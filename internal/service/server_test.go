package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

// newTestServer returns a Server plus an httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs a GET and returns (status, body, X-Cache header).
func get(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Cache")
}

func doReq(t *testing.T, method, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// --- graph store -------------------------------------------------------------

func TestGraphUploadDedupes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var edges bytes.Buffer
	if err := graph.WriteEdgeList(&edges, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	payload := edges.Bytes()

	code, body := doReq(t, "POST", ts.URL+"/v1/graphs", bytes.NewReader(payload))
	if code != http.StatusCreated {
		t.Fatalf("first upload: status %d, body %s", code, body)
	}
	var first graphPutResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Existed || first.N != 8 || first.M != 12 {
		t.Fatalf("first upload response wrong: %+v", first)
	}

	code, body = doReq(t, "POST", ts.URL+"/v1/graphs", bytes.NewReader(payload))
	if code != http.StatusOK {
		t.Fatalf("second upload: status %d", code)
	}
	var second graphPutResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Existed || second.Digest != first.Digest {
		t.Fatalf("upload did not dedupe: %+v vs %+v", first, second)
	}

	// The same graph requested as a named family resolves to the same
	// content-addressed entry.
	code, body = doReq(t, "POST", ts.URL+"/v1/graphs?family=hypercube&size=3", nil)
	if code != http.StatusOK {
		t.Fatalf("family request: status %d body %s", code, body)
	}
	var fam graphPutResponse
	if err := json.Unmarshal(body, &fam); err != nil {
		t.Fatal(err)
	}
	if !fam.Existed || fam.Digest != first.Digest {
		t.Fatalf("family did not dedupe onto upload: %+v", fam)
	}
}

func TestGraphEdgeListRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := doReq(t, "POST", ts.URL+"/v1/graphs?family=torus&size=4", nil)
	if code != http.StatusCreated {
		t.Fatalf("status %d: %s", code, body)
	}
	var put graphPutResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	code, edges, _ := get(t, ts.URL+"/v1/graphs/"+put.Digest+"/edges")
	if code != http.StatusOK {
		t.Fatalf("edges: status %d", code)
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(edges))
	if err != nil {
		t.Fatal(err)
	}
	if graph.DigestString(g) != put.Digest {
		t.Fatal("served edge list does not round-trip to the stored digest")
	}
}

func TestGraphErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := get(t, ts.URL+"/v1/graphs/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d, want 404", code)
	}
	// cycle(1) panics inside the generator; the service must turn that
	// into a 400, not crash.
	code, body := doReq(t, "POST", ts.URL+"/v1/graphs?family=cycle&size=1", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("cycle(1): status %d body %s, want 400", code, body)
	}
	code, body = doReq(t, "POST", ts.URL+"/v1/graphs?family=klein-bottle&size=3", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown family: status %d body %s, want 400", code, body)
	}
	code, _ = doReq(t, "POST", ts.URL+"/v1/graphs", strings.NewReader("not an edge list"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d, want 400", code)
	}
}

// --- memoization contract ----------------------------------------------------

// TestExpansionMemoization is the byte-level caching contract: two
// identical requests return byte-identical bodies, the second served from
// cache without recomputation.
func TestExpansionMemoization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/expansion?family=hypercube&size=3&obj=wireless&alpha=0.5"

	code, body1, cache1 := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("first request: status %d body %s", code, body1)
	}
	if cache1 != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", cache1)
	}
	code, body2, cache2 := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if cache2 != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("bodies differ:\n%s\n%s", body1, body2)
	}
	m := s.Snapshot()
	if m.Computations != 1 {
		t.Fatalf("computations = %d, want 1", m.Computations)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.CacheHits)
	}

	var resp expansionResponse
	if err := json.Unmarshal(body1, &resp); err != nil {
		t.Fatal(err)
	}
	// βw(Q3) at α=0.5: sanity-check the value is present and positive.
	if resp.Value <= 0 || len(resp.Witness) == 0 {
		t.Fatalf("implausible expansion response: %+v", resp)
	}
}

// TestEngineMetrics: the expansion-engine counters (sets evaluated,
// pruned, nodes visited, kernel variant) accumulate per actual
// computation — a cache hit must not move them — and surface through
// /metrics alongside the per-response copies in the cached bodies.
func TestEngineMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/expansion?family=hypercube&size=3&alpha=0.5"
	if code, body, _ := get(t, url); code != http.StatusOK {
		t.Fatalf("status %d body %s", code, body)
	}
	m := s.Snapshot()
	if m.EngineSets <= 0 {
		t.Fatalf("engine sets = %d, want > 0", m.EngineSets)
	}
	if got := m.EngineKernels["small-bnb"]; got != 1 {
		t.Fatalf("kernel runs = %v, want one small-bnb", m.EngineKernels)
	}
	setsBefore := m.EngineSets
	if code, _, cache := get(t, url); code != http.StatusOK || cache != "hit" {
		t.Fatalf("second request: status %d cache %q", code, cache)
	}
	if m = s.Snapshot(); m.EngineSets != setsBefore {
		t.Fatalf("cache hit moved engine sets: %d → %d", setsBefore, m.EngineSets)
	}
	code, body, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"wexpd_engine_sets_total ",
		"wexpd_engine_pruned_total ",
		"wexpd_engine_visited_total ",
		"wexpd_engine_subtrees_pruned_total ",
		"wexpd_engine_certified_runs 0",
		"wexpd_engine_trials_total 0",
		`wexpd_engine_kernel_runs{kernel="small-bnb"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestExpansionCertifiedFallback: past the exact budget the expansion
// endpoint must answer through the randomized certified tier instead of
// refusing — the body carries a certified-kind certificate with an
// explicit failure probability, the document stays memoizable (the
// fallback runs under a fixed server-side seed, so it is a pure function
// of the cache key), and /metrics counts the certified run and its trials.
func TestExpansionCertifiedFallback(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var edges bytes.Buffer
	if err := graph.WriteEdgeList(&edges, gen.ErdosRenyi(96, 0.08, rng.New(9))); err != nil {
		t.Fatal(err)
	}
	code, body := doReq(t, "POST", ts.URL+"/v1/graphs", bytes.NewReader(edges.Bytes()))
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d body %s", code, body)
	}
	var put graphPutResponse
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}

	url := fmt.Sprintf("%s/v1/expansion?graph=%s&maxk=6&budget=%d", ts.URL, put.Digest, uint64(1)<<22)
	code, body1, cache1 := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("certified request: status %d body %s", code, body1)
	}
	if cache1 != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", cache1)
	}
	var resp expansionResponse
	if err := json.Unmarshal(body1, &resp); err != nil {
		t.Fatal(err)
	}
	c := resp.Certificate
	if c.Kind != expansion.CertCertified {
		t.Fatalf("certificate kind = %q, want certified (body %s)", c.Kind, body1)
	}
	if c.FailureProb <= 0 || c.FailureProb > 1e-9 {
		t.Fatalf("failure_prob = %g, want (0, 1e-9]", c.FailureProb)
	}
	if c.Trials == 0 || len(resp.Witness) == 0 || resp.Value <= 0 {
		t.Fatalf("certified body carries no work: %s", body1)
	}

	// The certified document memoizes like the exact ones.
	code, body2, cache2 := get(t, url)
	if code != http.StatusOK || cache2 != "hit" {
		t.Fatalf("second request: status %d cache %q", code, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("certified bodies differ:\n%s\n%s", body1, body2)
	}

	m := s.Snapshot()
	if m.EngineCertified != 1 {
		t.Fatalf("certified runs = %d, want 1", m.EngineCertified)
	}
	if m.EngineTrials != int64(c.Trials) {
		t.Fatalf("trial gauge = %d, certificate says %d", m.EngineTrials, c.Trials)
	}
	code, mbody, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"wexpd_engine_certified_runs 1",
		fmt.Sprintf("wexpd_engine_trials_total %d", c.Trials),
		`wexpd_engine_kernel_runs{kernel="randomized-ppsz"} 1`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestAlphaAndMaxKShareCacheEntry: the size cap is canonicalized, so
// alpha=0.5 on n=8 and maxk=4 are the same request.
func TestAlphaAndMaxKShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body1, _ := get(t, ts.URL+"/v1/expansion?family=hypercube&size=3&alpha=0.5")
	_, body2, cache2 := get(t, ts.URL+"/v1/expansion?family=hypercube&size=3&maxk=4")
	if cache2 != "hit" {
		t.Fatalf("maxk-form request X-Cache = %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("alpha form and maxk form returned different bodies")
	}
}

// TestBroadcastModelCacheKeying: the receive-rule model is part of the
// canonical broadcast cache key — a fading request never shares an entry
// with the default unit-disk model, each misses then hits with byte-equal
// bodies, and spellings that canonicalize to the same model do share.
func TestBroadcastModelCacheKeying(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL + "/v1/broadcast?family=cplus&size=10&protocol=decay&trials=8&seed=3"
	code, def1, cache := get(t, base)
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("default model: status %d cache %q", code, cache)
	}
	code, fad1, cache := get(t, base+"&model=fading:0.25")
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("fading model should be keyed separately: status %d cache %q", code, cache)
	}
	_, fad2, cache := get(t, base+"&model=fading:0.25")
	if cache != "hit" || !bytes.Equal(fad1, fad2) {
		t.Fatalf("repeat fading request: cache %q, byte-equal %v", cache, bytes.Equal(fad1, fad2))
	}
	// "fading" canonicalizes to fading(p=0.25) — same entry.
	_, fad3, cache := get(t, base+"&model=fading")
	if cache != "hit" || !bytes.Equal(fad1, fad3) {
		t.Fatalf("canonicalized spelling should share the entry: cache %q", cache)
	}
	if bytes.Equal(def1, fad1) {
		t.Fatal("unit-disk and fading bodies are identical")
	}
	if !bytes.Contains(fad1, []byte(`"model":"fading(p=0.25)"`)) {
		t.Fatalf("response body missing canonical model name:\n%s", fad1)
	}
	// An explicit unit-disk model is the same computation as the default.
	_, def2, cache := get(t, base+"&model=unit-disk")
	if cache != "hit" || !bytes.Equal(def1, def2) {
		t.Fatalf("explicit unit-disk should share the default entry: cache %q", cache)
	}
	if code, body, _ := get(t, base+"&model=warp"); code != http.StatusBadRequest {
		t.Fatalf("unknown model: status %d body %s", code, body)
	}
}

// TestCrossServerDeterminism: the cached body is not an accident of one
// process — a fresh server computing the same request produces the same
// bytes (the engines are deterministic), which is what makes byte-level
// memoization sound across restarts and replicas.
func TestCrossServerDeterminism(t *testing.T) {
	paths := []string{
		"/v1/expansion?family=cplus&size=8&obj=wireless&alpha=0.4",
		"/v1/broadcast?family=cplus&size=12&protocol=decay&trials=16&seed=7&maxrounds=4096",
		"/v1/spokesman?family=torus&size=4&s=0,1,2,5&trials=8&seed=3",
	}
	_, ts1 := newTestServer(t, Config{Workers: 1})
	_, ts2 := newTestServer(t, Config{Workers: 4})
	for _, p := range paths {
		code1, body1, _ := get(t, ts1.URL+p)
		code2, body2, _ := get(t, ts2.URL+p)
		if code1 != http.StatusOK || code2 != http.StatusOK {
			t.Fatalf("%s: status %d vs %d (%s)", p, code1, code2, body1)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s: bodies differ across servers/worker counts:\n%s\n%s", p, body1, body2)
		}
	}
}

// TestSingleflightCoalescing is the exactly-once contract: N concurrent
// identical requests trigger exactly one underlying computation. The
// compute hook holds the first execution open until the other requests
// have either coalesced onto it or (scheduling permitting) queued behind
// the cache, so the assertion is deterministic either way.
func TestSingleflightCoalescing(t *testing.T) {
	const clients = 8
	s, ts := newTestServer(t, Config{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.computeHook = func(key string) {
		hookOnce.Do(func() {
			// Hold the computation open until the waiters have piled up —
			// or a generous deadline passes (late arrivals then hit the
			// cache instead; the computation count stays 1 regardless).
			deadline := time.After(2 * time.Second)
			for {
				if s.flight.Stats().Coalesced >= clients-1 {
					return
				}
				select {
				case <-deadline:
					return
				case <-release:
					return
				case <-time.After(time.Millisecond):
				}
			}
		})
	}
	defer close(release)

	url := ts.URL + "/v1/expansion?family=torus&size=5&obj=ordinary&alpha=0.3"
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
	m := s.Snapshot()
	if m.Computations != 1 {
		t.Fatalf("computations = %d, want exactly 1 for %d concurrent identical requests", m.Computations, clients)
	}
	if m.Coalesced+m.CacheHits != clients-1 {
		t.Fatalf("coalesced (%d) + hits (%d) = %d, want %d", m.Coalesced, m.CacheHits, m.Coalesced+m.CacheHits, clients-1)
	}
}

// --- jobs --------------------------------------------------------------------

func pollJob(t *testing.T, url string, want JobState, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body, _ := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("job poll: status %d body %s", code, body)
		}
		var v JobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		if v.State != JobRunning {
			t.Fatalf("job reached %s, want %s", v.State, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after %v, want %s", v.State, timeout, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle runs an async broadcast job to completion and fetches
// its result — which must be byte-identical to the synchronous form of the
// same request.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := "/v1/broadcast?family=cplus&size=10&protocol=decay&trials=8&seed=5&maxrounds=2048"
	code, body, _ := get(t, ts.URL+q+"&async=1")
	if code != http.StatusAccepted {
		t.Fatalf("job create: status %d body %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobRunning || v.ID == "" {
		t.Fatalf("fresh job view wrong: %+v", v)
	}
	done := pollJob(t, ts.URL+"/v1/jobs/"+v.ID, JobDone, 10*time.Second)
	if done.ResultURL == "" {
		t.Fatalf("done job has no result URL: %+v", done)
	}
	code, jobBody, _ := get(t, ts.URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("job result: status %d", code)
	}
	code, syncBody, cache := get(t, ts.URL+q)
	if code != http.StatusOK {
		t.Fatalf("sync request: status %d", code)
	}
	if cache != "hit" {
		t.Fatalf("sync request after job X-Cache = %q, want hit (job result memoized)", cache)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatal("job result and synchronous response differ")
	}
}

// TestJobCancellation is the cancellation contract: DELETE stops a running
// job promptly (the engine observes the context at a chunk boundary), the
// job reports cancelled, and a subsequent identical request still computes
// the correct, cache-consistent result.
func TestJobCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.computeHook = func(key string) {
		hookOnce.Do(func() {
			close(started)
			<-release
		})
	}

	q := "/v1/expansion?family=torus&size=5&obj=unique&alpha=0.25"
	code, body, _ := get(t, ts.URL+q+"&async=1")
	if code != http.StatusAccepted {
		t.Fatalf("job create: status %d body %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	<-started // the computation is in flight

	code, body = doReq(t, "DELETE", ts.URL+"/v1/jobs/"+v.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d body %s", code, body)
	}
	close(release) // let the (now cancelled) computation proceed to the boundary check
	cancelled := pollJob(t, ts.URL+"/v1/jobs/"+v.ID, JobCancelled, 5*time.Second)
	if cancelled.Error == "" {
		t.Fatalf("cancelled job should carry the context error: %+v", cancelled)
	}
	if m := s.Snapshot(); m.JobsCancelled != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", m.JobsCancelled)
	}

	// Nothing was cached for the cancelled run; the same request now
	// computes cleanly and matches a fresh server bit-for-bit.
	code, gotBody, cache := get(t, ts.URL+q)
	if code != http.StatusOK {
		t.Fatalf("post-cancel request: status %d body %s", code, gotBody)
	}
	if cache != "miss" {
		t.Fatalf("post-cancel request X-Cache = %q, want miss (cancelled run must not cache)", cache)
	}
	_, ts2 := newTestServer(t, Config{})
	code, wantBody, _ := get(t, ts2.URL+q)
	if code != http.StatusOK {
		t.Fatalf("fresh server: status %d", code)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatal("post-cancel result differs from a never-cancelled server")
	}
}

func TestJobErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := get(t, ts.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	if code, _ := doReq(t, "DELETE", ts.URL+"/v1/jobs/job-999999", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d, want 404", code)
	}
}

// --- experiments -------------------------------------------------------------

// TestExperimentsJob runs E2 (cheap quick grids) through the job engine
// and checks progress reporting plus the result document.
func TestExperimentsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := doReq(t, "POST", ts.URL+"/v1/experiments?ids=E2&quick=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("status %d body %s", code, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts.URL+"/v1/jobs/"+v.ID, JobDone, 60*time.Second)
	if done.Total == 0 || done.Done != done.Total {
		t.Fatalf("experiments job should report full shard progress, got %d/%d", done.Done, done.Total)
	}
	code, res, _ := get(t, ts.URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	var rep experimentsResponse
	if err := json.Unmarshal(res, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].ID != "E2" || !rep.Results[0].Pass {
		t.Fatalf("unexpected experiments response: %s", res)
	}
}

func TestExperimentsValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _ := doReq(t, "POST", ts.URL+"/v1/experiments?ids=E99", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown experiment: status %d, want 400", code)
	}
}

// --- parameter validation ----------------------------------------------------

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBudget: 1 << 20, MaxTrials: 64})
	cases := []struct {
		path string
		want int
	}{
		{"/v1/expansion", http.StatusBadRequest},                                                           // no graph
		{"/v1/expansion?graph=0000", http.StatusNotFound},                                                  // unknown digest
		{"/v1/expansion?family=hypercube&size=3&obj=quantum", http.StatusBadRequest},                       // bad objective
		{"/v1/expansion?family=hypercube&size=3&alpha=0", http.StatusBadRequest},                           // empty size cap
		{"/v1/expansion?family=hypercube&size=3&budget=2097152", http.StatusUnprocessableEntity},           // over server budget cap
		{"/v1/expansion?family=hypercube&size=8&alpha=0.5&budget=1048576", http.StatusUnprocessableEntity}, // over engine budget
		{"/v1/broadcast?family=cplus&size=8&protocol=nope", http.StatusBadRequest},
		{"/v1/broadcast?family=cplus&size=8&trials=65", http.StatusBadRequest}, // over MaxTrials
		{"/v1/broadcast?family=cplus&size=8&source=99", http.StatusBadRequest},
		{"/v1/spokesman?family=cplus&size=8", http.StatusBadRequest},        // missing s
		{"/v1/spokesman?family=cplus&size=8&s=0,99", http.StatusBadRequest}, // vertex out of range
	}
	for _, c := range cases {
		code, body, _ := get(t, ts.URL+c.path)
		if code != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.path, code, body, c.want)
		}
	}
}

// TestSpokesmanCanonicalSetKey: permutations and duplicates of the same
// vertex set share one cache entry.
func TestSpokesmanCanonicalSetKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body1, _ := get(t, ts.URL+"/v1/spokesman?family=torus&size=4&s=5,1,0,2")
	_, body2, cache := get(t, ts.URL+"/v1/spokesman?family=torus&size=4&s=0,1,2,5,1")
	if cache != "hit" {
		t.Fatalf("permuted set X-Cache = %q, want hit", cache)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("permuted vertex sets returned different bodies")
	}
}

// --- health and metrics ------------------------------------------------------

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// One computed request, repeated: the metrics must show the hit.
	url := ts.URL + "/v1/expansion?family=hypercube&size=3&alpha=0.5"
	get(t, url)
	get(t, url)
	code, body, _ = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"wexpd_cache_hits 1\n",
		"wexpd_computations 1\n",
		"wexpd_graphs_stored 1\n",
		"wexpd_inflight 0\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestGraphListDeterministic: the listing is sorted by digest, so its body
// is a pure function of store content.
func TestGraphListDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"family=hypercube&size=3", "family=torus&size=4", "family=cplus&size=8"} {
		if code, body := doReq(t, "POST", ts.URL+"/v1/graphs?"+q, nil); code != http.StatusCreated {
			t.Fatalf("%s: status %d body %s", q, code, body)
		}
	}
	_, body1, _ := get(t, ts.URL+"/v1/graphs")
	_, body2, _ := get(t, ts.URL+"/v1/graphs")
	if !bytes.Equal(body1, body2) {
		t.Fatal("graph listing is not deterministic")
	}
	var list struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body1, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 3 {
		t.Fatalf("count = %d, want 3", list.Count)
	}
}

// --- store capacity ----------------------------------------------------------

func TestStoreCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGraphs: 2})
	for i, q := range []string{"family=hypercube&size=2", "family=hypercube&size=3"} {
		if code, body := doReq(t, "POST", ts.URL+"/v1/graphs?"+q, nil); code != http.StatusCreated {
			t.Fatalf("graph %d: status %d body %s", i, code, body)
		}
	}
	code, _ := doReq(t, "POST", ts.URL+"/v1/graphs?family=hypercube&size=4", nil)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("store overflow: status %d, want 507", code)
	}
	// Dedup still works at capacity: an existing graph is re-acceptable.
	code, _ = doReq(t, "POST", ts.URL+"/v1/graphs?family=hypercube&size=3", nil)
	if code != http.StatusOK {
		t.Fatalf("dedupe at capacity: status %d, want 200", code)
	}
}
