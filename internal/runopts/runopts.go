// Package runopts defines the run-control knobs shared by every
// long-running engine in this repository (exact expansion, Monte-Carlo
// broadcast, the experiment engine). Each engine's Options struct embeds
// RunOpts, so the common fields have one name, one documentation string,
// and one zero-value contract everywhere; the root package re-exports the
// type as wexp.RunOpts.
package runopts

// RunOpts is the common run-control block. The zero value of every field
// selects a production-sensible default. Engines ignore fields that do
// not apply to them (the expansion engine is deterministic and ignores
// Seed; the radio engine has no work budget and ignores Budget) — the
// per-engine Options documentation says which fields are live.
type RunOpts struct {
	// Workers is the worker-pool width; 0 means GOMAXPROCS. Every engine
	// guarantees bit-identical results at every width.
	Workers int
	// Budget bounds the total work in engine-specific units (0 = the
	// engine's default budget).
	Budget uint64
	// Seed seeds the engine's deterministic random streams. Engines that
	// consume no randomness ignore it.
	Seed uint64
}
