// Package bitset provides a dense, fixed-capacity bit set used throughout
// the expansion solvers for representing vertex subsets.
//
// The hot loops of the library — exhaustive expansion measurement, unique
// neighborhood computation, and the radio simulator's transmit/receive
// bookkeeping — all operate on vertex sets. A packed []uint64 representation
// keeps those loops allocation-free and cache-friendly.
package bitset

import (
	"fmt"
	"iter"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe {0, 1, ..., n-1}.
// The zero value is an empty set of capacity zero; use New to create a set
// with a given capacity. Methods that combine two sets require equal
// capacity and panic otherwise: mixing universes is always a programming
// error in this code base, never a recoverable condition.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n elements.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set of capacity n containing exactly the given
// elements. It panics if any element is out of range.
func FromIndices(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Len returns the capacity of the set (the size of the universe, not the
// number of elements currently contained; see Count).
func (s *Set) Len() int { return s.n }

// Add inserts element i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes element i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether element i is present. It panics if i is out of
// range.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of t. Capacities must match.
func (s *Set) Copy(t *Set) {
	s.compat(t)
	copy(s.words, t.words)
}

// Union sets s = s ∪ t.
func (s *Set) Union(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s \ t.
func (s *Set) Subtract(t *Set) {
	s.compat(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// AccumulateCover ORs row into s while recording in multi every element of
// row that was already present in s. With s as the "hit at least once"
// accumulator and multi as the "hit at least twice" accumulator, repeated
// calls compute single- and multiple-coverage of a family of rows in one
// pass per word — the radio engine's word-parallel collision step, which
// never needs a per-element counter. Capacities must match.
func (s *Set) AccumulateCover(multi, row *Set) {
	s.compat(multi)
	s.compat(row)
	rw := row.words
	// Four-wide unroll: this is the radio engine's innermost loop, and the
	// compiler does not unroll it on its own.
	sw, mw := s.words[:len(rw)], multi.words[:len(rw)]
	i := 0
	for ; i+4 <= len(rw); i += 4 {
		w0, w1, w2, w3 := rw[i], rw[i+1], rw[i+2], rw[i+3]
		mw[i] |= sw[i] & w0
		sw[i] |= w0
		mw[i+1] |= sw[i+1] & w1
		sw[i+1] |= w1
		mw[i+2] |= sw[i+2] & w2
		sw[i+2] |= w2
		mw[i+3] |= sw[i+3] & w3
		sw[i+3] |= w3
	}
	for ; i < len(rw); i++ {
		w := rw[i]
		mw[i] |= sw[i] & w
		sw[i] |= w
	}
}

// ScatterCover is the element-wise form of AccumulateCover for sparse
// rows: each element of elems is added to s, with elements already in s
// recorded in multi. Branchless per element, so rows far sparser than the
// word width never pay a full-word sweep. Elements must be in range;
// capacities must match.
func (s *Set) ScatterCover(multi *Set, elems []int32) {
	s.compat(multi)
	sw, mw := s.words, multi.words
	for _, e := range elems {
		wi, bit := int(e)>>6, uint64(1)<<(uint(e)&63)
		mw[wi] |= sw[wi] & bit
		sw[wi] |= bit
	}
}

// IntersectionCount returns |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	s.compat(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// SubtractCount returns |s \ t| without allocating.
func (s *Set) SubtractCount(t *Set) int {
	s.compat(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// Equal reports whether s and t contain the same elements. Capacities must
// match.
func (s *Set) Equal(t *Set) bool {
	s.compat(t)
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element of s is in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	s.compat(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t is empty.
func (s *Set) Disjoint(t *Set) bool {
	s.compat(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Empty reports whether the set contains no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element of the set in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// All returns an iterator over the elements of the set in increasing order,
// for use with range-over-func. The set must not be mutated during
// iteration.
func (s *Set) All() iter.Seq[int] {
	return func(yield func(int) bool) {
		for wi, w := range s.words {
			base := wi * wordBits
			for w != 0 {
				if !yield(base + bits.TrailingZeros64(w)) {
					return
				}
				w &= w - 1
			}
		}
	}
}

// Indices returns the elements of the set in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// AppendIndices appends the elements of the set in increasing order to dst
// and returns the extended slice — the allocation-free form of Indices for
// hot loops that reuse a member buffer.
func (s *Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Next returns the smallest element ≥ i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// NextZero returns the smallest index ≥ i that is NOT in the set, or -1 if
// every element of [i, n) is present.
func (s *Set) NextZero(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	if w := ^s.words[wi] >> uint(i%wordBits); w != 0 {
		if r := i + bits.TrailingZeros64(w); r < s.n {
			return r
		}
		return -1
	}
	for wi++; wi < len(s.words); wi++ {
		if w := ^s.words[wi]; w != 0 {
			if r := wi*wordBits + bits.TrailingZeros64(w); r < s.n {
				return r
			}
			return -1
		}
	}
	return -1
}

// CountRange returns the number of elements in [lo, hi). Bounds are clamped
// to the universe.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if loW == hiW {
		return bits.OnesCount64(s.words[loW] & loMask & hiMask)
	}
	c := bits.OnesCount64(s.words[loW] & loMask)
	for wi := loW + 1; wi < hiW; wi++ {
		c += bits.OnesCount64(s.words[wi])
	}
	return c + bits.OnesCount64(s.words[hiW]&hiMask)
}

// Compare orders two sets by their value as |words|·64-bit unsigned
// integers (bit i has weight 2^i): -1 if s < t, 0 if equal, +1 if s > t.
// This is the tie-break order used by the expansion engine's deterministic
// merge. Capacities must match.
func (s *Set) Compare(t *Set) int {
	s.compat(t)
	for i := len(s.words) - 1; i >= 0; i-- {
		switch {
		case s.words[i] < t.words[i]:
			return -1
		case s.words[i] > t.words[i]:
			return 1
		}
	}
	return 0
}

// FirstCombination resets the set to {0, 1, ..., k-1}, the numerically
// smallest k-element subset of the universe. It panics if k is out of
// range.
func (s *Set) FirstCombination(k int) {
	if k < 0 || k > s.n {
		panic(fmt.Sprintf("bitset: combination size %d out of range [0,%d]", k, s.n))
	}
	s.Clear()
	s.setRange(0, k)
}

// NextCombination advances the set to the next k-element subset of the
// universe in increasing numeric order (Gosper's hack generalized to the
// multiword representation, where k = Count()). It returns false — leaving
// the set unchanged — when the current set is the numerically largest
// k-combination. The empty set has no successor.
func (s *Set) NextCombination() bool {
	lo := s.Next(0)
	if lo < 0 {
		return false
	}
	// The lowest run of ones spans [lo, p); the successor clears the run,
	// sets bit p, and packs the remaining run at the bottom:
	//   ...0111100 -> ...1000011  (runLen-1 low bits survive).
	p := s.NextZero(lo)
	if p < 0 {
		return false // run reaches the top: numerically largest combination
	}
	runLen := p - lo
	s.clearRange(lo, p)
	s.Add(p)
	s.setRange(0, runLen-1)
	return true
}

// setRange adds every element of [lo, hi) to the set. Callers guarantee
// bounds are within the universe.
func (s *Set) setRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if loW == hiW {
		s.words[loW] |= loMask & hiMask
		return
	}
	s.words[loW] |= loMask
	for wi := loW + 1; wi < hiW; wi++ {
		s.words[wi] = ^uint64(0)
	}
	s.words[hiW] |= hiMask
}

// clearRange removes every element of [lo, hi) from the set. Callers
// guarantee bounds are within the universe.
func (s *Set) clearRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if loW == hiW {
		s.words[loW] &^= loMask & hiMask
		return
	}
	s.words[loW] &^= loMask
	for wi := loW + 1; wi < hiW; wi++ {
		s.words[wi] = 0
	}
	s.words[hiW] &^= hiMask
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *Set) compat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, t.n))
	}
}

// trim clears the unused high bits in the last word so Count and Equal stay
// correct after Fill.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}
