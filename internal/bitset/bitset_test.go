package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
	if !s.Empty() {
		t.Fatal("Empty() = false on new set")
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double Add, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a.Union(b)
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill count=%d", n, s.Count())
		}
		s.Clear()
		if s.Count() != 0 {
			t.Fatalf("n=%d: Clear count=%d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 50, 99})
	b := FromIndices(100, []int{2, 3, 4, 99})

	u := a.Clone()
	u.Union(b)
	wantU := []int{1, 2, 3, 4, 50, 99}
	if got := u.Indices(); !equalInts(got, wantU) {
		t.Fatalf("union = %v, want %v", got, wantU)
	}

	i := a.Clone()
	i.Intersect(b)
	wantI := []int{2, 3, 99}
	if got := i.Indices(); !equalInts(got, wantI) {
		t.Fatalf("intersect = %v, want %v", got, wantI)
	}

	d := a.Clone()
	d.Subtract(b)
	wantD := []int{1, 50}
	if got := d.Indices(); !equalInts(got, wantD) {
		t.Fatalf("subtract = %v, want %v", got, wantD)
	}

	if got := a.IntersectionCount(b); got != 3 {
		t.Fatalf("IntersectionCount = %d, want 3", got)
	}
	if got := a.SubtractCount(b); got != 2 {
		t.Fatalf("SubtractCount = %d, want 2", got)
	}
}

func TestSubsetDisjointEqual(t *testing.T) {
	a := FromIndices(64, []int{1, 2})
	b := FromIndices(64, []int{1, 2, 3})
	c := FromIndices(64, []int{10, 11})
	if !a.IsSubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	if !a.Disjoint(c) {
		t.Fatal("a, c disjoint expected")
	}
	if a.Disjoint(b) {
		t.Fatal("a, b not disjoint")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("a == clone expected")
	}
	if a.Equal(b) {
		t.Fatal("a != b expected")
	}
}

func TestForEachOrderAndNext(t *testing.T) {
	elems := []int{5, 0, 77, 64, 13}
	s := FromIndices(128, elems)
	want := []int{0, 5, 13, 64, 77}
	if got := s.Indices(); !equalInts(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	if got := s.Next(0); got != 0 {
		t.Fatalf("Next(0) = %d, want 0", got)
	}
	if got := s.Next(1); got != 5 {
		t.Fatalf("Next(1) = %d, want 5", got)
	}
	if got := s.Next(65); got != 77 {
		t.Fatalf("Next(65) = %d, want 77", got)
	}
	if got := s.Next(78); got != -1 {
		t.Fatalf("Next(78) = %d, want -1", got)
	}
}

func TestCopy(t *testing.T) {
	a := FromIndices(70, []int{1, 69})
	b := New(70)
	b.Copy(a)
	if !a.Equal(b) {
		t.Fatal("Copy mismatch")
	}
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("Copy aliased storage")
	}
}

func TestAllIterator(t *testing.T) {
	s := FromIndices(130, []int{0, 5, 63, 64, 100, 129})
	var got []int
	for i := range s.All() {
		got = append(got, i)
	}
	want := []int{0, 5, 63, 64, 100, 129}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early break must not panic or over-yield.
	count := 0
	for range s.All() {
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Fatalf("break ignored, count=%d", count)
	}
}

func TestNextZero(t *testing.T) {
	s := New(130)
	s.Fill()
	if got := s.NextZero(0); got != -1 {
		t.Fatalf("full set NextZero = %d", got)
	}
	s.Remove(64)
	s.Remove(129)
	if got := s.NextZero(0); got != 64 {
		t.Fatalf("NextZero(0) = %d, want 64", got)
	}
	if got := s.NextZero(65); got != 129 {
		t.Fatalf("NextZero(65) = %d, want 129", got)
	}
	if got := s.NextZero(130); got != -1 {
		t.Fatalf("NextZero past capacity = %d", got)
	}
	empty := New(70)
	if got := empty.NextZero(3); got != 3 {
		t.Fatalf("empty NextZero(3) = %d", got)
	}
}

func TestCountRange(t *testing.T) {
	s := FromIndices(200, []int{0, 1, 63, 64, 65, 128, 199})
	cases := []struct{ lo, hi, want int }{
		{0, 200, 7},
		{0, 2, 2},
		{1, 64, 2},
		{63, 66, 3},
		{64, 64, 0},
		{66, 128, 0},
		{128, 200, 2},
		{-5, 1000, 7},
	}
	for _, c := range cases {
		if got := s.CountRange(c.lo, c.hi); got != c.want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	a := FromIndices(130, []int{0, 1})
	b := FromIndices(130, []int{2})
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatal("numeric order violated in low word")
	}
	c := FromIndices(130, []int{0, 129})
	if b.Compare(c) != -1 || c.Compare(c.Clone()) != 0 {
		t.Fatal("numeric order violated across words")
	}
}

func TestFirstCombination(t *testing.T) {
	s := New(100)
	s.FirstCombination(70)
	if s.Count() != 70 || !s.Contains(69) || s.Contains(70) {
		t.Fatalf("FirstCombination(70) = %v", s)
	}
	s.FirstCombination(0)
	if !s.Empty() {
		t.Fatal("FirstCombination(0) not empty")
	}
}

// TestNextCombinationMatchesGosper cross-checks the multiword successor
// against the classic uint64 Gosper hack for every k on a 12-universe.
func TestNextCombinationMatchesGosper(t *testing.T) {
	const n = 12
	gosper := func(x uint64) uint64 {
		u := x & (^x + 1)
		v := x + u
		return v | ((x ^ v) / u >> 2)
	}
	for k := 1; k <= n; k++ {
		s := New(n)
		s.FirstCombination(k)
		mask := uint64(1)<<uint(k) - 1
		for {
			var got uint64
			s.ForEach(func(i int) { got |= 1 << uint(i) })
			if got != mask {
				t.Fatalf("k=%d: set %b, Gosper %b", k, got, mask)
			}
			next := gosper(mask)
			if next >= 1<<n {
				if s.NextCombination() {
					t.Fatalf("k=%d: advanced past the last combination %b", k, mask)
				}
				break
			}
			if !s.NextCombination() {
				t.Fatalf("k=%d: refused to advance from %b", k, mask)
			}
			mask = next
		}
	}
}

// TestNextCombinationMultiword exercises combinations straddling word
// boundaries.
func TestNextCombinationMultiword(t *testing.T) {
	s := FromIndices(130, []int{62, 63, 64}) // a run across the boundary
	if !s.NextCombination() {
		t.Fatal("refused to advance")
	}
	want := FromIndices(130, []int{0, 1, 65})
	if !s.Equal(want) {
		t.Fatalf("got %v, want %v", s, want)
	}
	// The numerically largest 2-combination of 130 has no successor.
	last := FromIndices(130, []int{128, 129})
	if last.NextCombination() {
		t.Fatal("advanced past the end of the sequence")
	}
	if !last.Equal(FromIndices(130, []int{128, 129})) {
		t.Fatal("failed NextCombination mutated the set")
	}
	// Count the full C(66,2) sequence on a >64 universe.
	s2 := New(66)
	s2.FirstCombination(2)
	count := 1
	for s2.NextCombination() {
		count++
		if c := s2.Count(); c != 2 {
			t.Fatalf("cardinality drifted to %d", c)
		}
	}
	if count != 66*65/2 {
		t.Fatalf("enumerated %d combinations, want %d", count, 66*65/2)
	}
}

func TestString(t *testing.T) {
	s := FromIndices(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: De Morgan via counts — |A ∪ B| = |A| + |B| − |A ∩ B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.Union(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: subtraction then union restores a superset relationship.
func TestQuickSubtractUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		d := a.Clone()
		d.Subtract(b)
		// d and b are disjoint, d ⊆ a, and d ∪ (a ∩ b) = a.
		if !d.Disjoint(b) || !d.IsSubsetOf(a) {
			return false
		}
		ab := a.Clone()
		ab.Intersect(b)
		d.Union(ab)
		return d.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAccumulateCover(t *testing.T) {
	// Rows {0,1}, {1,2}, {1,3}: element 1 is covered three times, 0/2/3
	// once. hit must end as {0,1,2,3} and multi exactly {1}.
	hit, multi := New(130), New(130)
	rows := [][]int{{0, 1}, {1, 2}, {1, 3}, {127, 128}, {128, 129}}
	for _, row := range rows {
		hit.AccumulateCover(multi, FromIndices(130, row))
	}
	if got := hit.Indices(); !equalInts(got, []int{0, 1, 2, 3, 127, 128, 129}) {
		t.Fatalf("hit = %v", got)
	}
	if got := multi.Indices(); !equalInts(got, []int{1, 128}) {
		t.Fatalf("multi = %v", got)
	}
	// Idempotent on repeats: re-accumulating a row moves its elements to
	// multi but never beyond.
	hit.AccumulateCover(multi, FromIndices(130, []int{0, 1}))
	if got := multi.Indices(); !equalInts(got, []int{0, 1, 128}) {
		t.Fatalf("multi after repeat = %v", got)
	}
	if hit.Count() != 7 {
		t.Fatalf("hit grew: %v", hit.Indices())
	}
}

func TestAccumulateCoverMatchesCounting(t *testing.T) {
	// Randomized cross-check against explicit per-element counters.
	const n, rounds = 97, 40
	rnd := uint64(12345)
	next := func(m uint64) uint64 { rnd = rnd*6364136223846793005 + 1442695040888963407; return rnd % m }
	hit, multi := New(n), New(n)
	counts := make([]int, n)
	for i := 0; i < rounds; i++ {
		row := New(n)
		for j := 0; j < 12; j++ {
			row.Add(int(next(n)))
		}
		row.ForEach(func(e int) { counts[e]++ })
		hit.AccumulateCover(multi, row)
	}
	for e := 0; e < n; e++ {
		if hit.Contains(e) != (counts[e] >= 1) || multi.Contains(e) != (counts[e] >= 2) {
			t.Fatalf("element %d: count=%d hit=%v multi=%v", e, counts[e], hit.Contains(e), multi.Contains(e))
		}
	}
}

func TestScatterCoverMatchesAccumulateCover(t *testing.T) {
	// The element-wise scatter and the word sweep must build identical
	// hit/multi sets from the same rows.
	const n = 90
	rows := [][]int32{{0, 5, 63, 64, 89}, {5, 64}, {1, 63}, {5}}
	hitA, multiA := New(n), New(n)
	hitS, multiS := New(n), New(n)
	for _, row := range rows {
		asSet := New(n)
		for _, e := range row {
			asSet.Add(int(e))
		}
		hitA.AccumulateCover(multiA, asSet)
		hitS.ScatterCover(multiS, row)
	}
	if !hitA.Equal(hitS) || !multiA.Equal(multiS) {
		t.Fatalf("scatter diverged: hit %v vs %v, multi %v vs %v",
			hitA.Indices(), hitS.Indices(), multiA.Indices(), multiS.Indices())
	}
	if got := multiS.Indices(); !equalInts(got, []int{5, 63, 64}) {
		t.Fatalf("multi = %v", got)
	}
}

func TestAccumulateCoverPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected capacity-mismatch panic")
		}
	}()
	New(10).AccumulateCover(New(10), New(11))
}
