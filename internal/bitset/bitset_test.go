package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
	if !s.Empty() {
		t.Fatal("Empty() = false on new set")
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after double Add, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	a.Union(b)
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill count=%d", n, s.Count())
		}
		s.Clear()
		if s.Count() != 0 {
			t.Fatalf("n=%d: Clear count=%d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 50, 99})
	b := FromIndices(100, []int{2, 3, 4, 99})

	u := a.Clone()
	u.Union(b)
	wantU := []int{1, 2, 3, 4, 50, 99}
	if got := u.Indices(); !equalInts(got, wantU) {
		t.Fatalf("union = %v, want %v", got, wantU)
	}

	i := a.Clone()
	i.Intersect(b)
	wantI := []int{2, 3, 99}
	if got := i.Indices(); !equalInts(got, wantI) {
		t.Fatalf("intersect = %v, want %v", got, wantI)
	}

	d := a.Clone()
	d.Subtract(b)
	wantD := []int{1, 50}
	if got := d.Indices(); !equalInts(got, wantD) {
		t.Fatalf("subtract = %v, want %v", got, wantD)
	}

	if got := a.IntersectionCount(b); got != 3 {
		t.Fatalf("IntersectionCount = %d, want 3", got)
	}
	if got := a.SubtractCount(b); got != 2 {
		t.Fatalf("SubtractCount = %d, want 2", got)
	}
}

func TestSubsetDisjointEqual(t *testing.T) {
	a := FromIndices(64, []int{1, 2})
	b := FromIndices(64, []int{1, 2, 3})
	c := FromIndices(64, []int{10, 11})
	if !a.IsSubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	if !a.Disjoint(c) {
		t.Fatal("a, c disjoint expected")
	}
	if a.Disjoint(b) {
		t.Fatal("a, b not disjoint")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("a == clone expected")
	}
	if a.Equal(b) {
		t.Fatal("a != b expected")
	}
}

func TestForEachOrderAndNext(t *testing.T) {
	elems := []int{5, 0, 77, 64, 13}
	s := FromIndices(128, elems)
	want := []int{0, 5, 13, 64, 77}
	if got := s.Indices(); !equalInts(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	if got := s.Next(0); got != 0 {
		t.Fatalf("Next(0) = %d, want 0", got)
	}
	if got := s.Next(1); got != 5 {
		t.Fatalf("Next(1) = %d, want 5", got)
	}
	if got := s.Next(65); got != 77 {
		t.Fatalf("Next(65) = %d, want 77", got)
	}
	if got := s.Next(78); got != -1 {
		t.Fatalf("Next(78) = %d, want -1", got)
	}
}

func TestCopy(t *testing.T) {
	a := FromIndices(70, []int{1, 69})
	b := New(70)
	b.Copy(a)
	if !a.Equal(b) {
		t.Fatal("Copy mismatch")
	}
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("Copy aliased storage")
	}
}

func TestString(t *testing.T) {
	s := FromIndices(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: De Morgan via counts — |A ∪ B| = |A| + |B| − |A ∩ B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		u := a.Clone()
		u.Union(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: subtraction then union restores a superset relationship.
func TestQuickSubtractUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		d := a.Clone()
		d.Subtract(b)
		// d and b are disjoint, d ⊆ a, and d ∪ (a ∩ b) = a.
		if !d.Disjoint(b) || !d.IsSubsetOf(a) {
			return false
		}
		ab := a.Clone()
		ab.Intersect(b)
		d.Union(ab)
		return d.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
