package bitset

import (
	"fmt"
	"math"
	"math/bits"
)

// Binomial returns C(n, k), saturating at MaxUint64 on overflow.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := uint64(1)
	for i := 1; i <= k; i++ {
		hi, lo := bits.Mul64(r, uint64(n-k+i))
		if hi >= uint64(i) {
			return math.MaxUint64
		}
		r, _ = bits.Div64(hi, lo, uint64(i))
	}
	return r
}

// RevolvingDoor enumerates the k-element subsets of {0..n-1} in the
// revolving-door Gray-code order (Knuth 7.2.1.3, Algorithm R): every
// successor differs from its predecessor by exactly one element swapped
// out and one swapped in — the strong minimal-change property that lets a
// caller maintain per-set state with O(deg(out)+deg(in)) work instead of
// recomputing it from all k members.
//
// The order has a standard rank bijection (Reset unranks, Rank ranks), so
// a rank interval [start, start+count) denotes a fixed family of sets no
// matter how it is walked — the property the expansion engine's
// deterministic chunk merge relies on.
type RevolvingDoor struct {
	n, k int
	// c[1..k] is the current combination in increasing order; c[k+1] = n is
	// Algorithm R's sentinel; c[0] is unused padding so the algorithm's
	// 1-based indices map directly.
	c []int
}

// NewRevolvingDoor returns an enumerator positioned at the combination of
// the given rank. It panics if k is out of [0, n] or rank ≥ C(n, k).
func NewRevolvingDoor(n, k int, rank uint64) *RevolvingDoor {
	rd := &RevolvingDoor{}
	rd.Reset(n, k, rank)
	return rd
}

// Reset repositions the enumerator at the rank-th combination of the
// revolving-door order, reusing internal storage. It panics if k is out of
// [0, n] or rank ≥ C(n, k).
func (rd *RevolvingDoor) Reset(n, k int, rank uint64) {
	if k < 0 || k > n {
		panic(fmt.Sprintf("bitset: combination size %d out of range [0,%d]", k, n))
	}
	if total := Binomial(n, k); rank >= total {
		panic(fmt.Sprintf("bitset: rank %d out of range [0,%d)", rank, total))
	}
	rd.n, rd.k = n, k
	if cap(rd.c) < k+2 {
		rd.c = make([]int, k+2)
	} else {
		rd.c = rd.c[:k+2]
	}
	c := rd.c
	c[k+1] = n
	// Unrank: combinations with max element m occupy the rank block
	// [C(m,i), C(m+1,i)); within the block the remaining (i−1)-subset is
	// ranked in *reverse* — the recursive definition of the order.
	r := rank
	bound := n
	for i := k; i >= 1; i-- {
		p := bound - 1
		for Binomial(p, i) > r {
			p--
		}
		c[i] = p
		r = Binomial(p+1, i) - 1 - r
		bound = p
	}
}

// Rank returns the rank of the current combination in the revolving-door
// order — the inverse of Reset's unranking.
func (rd *RevolvingDoor) Rank() uint64 {
	var r uint64
	for i := 1; i <= rd.k; i++ {
		r = Binomial(rd.c[i]+1, i) - 1 - r
	}
	return r
}

// Members returns the current combination in increasing order. The slice
// aliases internal storage: it is valid only until the next Next/NextBatch/
// Reset call and must not be modified.
func (rd *RevolvingDoor) Members() []int {
	return rd.c[1 : rd.k+1]
}

// Mask returns the current combination as a uint64 bit mask. It panics
// when n > 64.
func (rd *RevolvingDoor) Mask() uint64 {
	if rd.n > 64 {
		panic(fmt.Sprintf("bitset: Mask needs n <= 64, have %d", rd.n))
	}
	var m uint64
	for _, v := range rd.Members() {
		m |= 1 << uint(v)
	}
	return m
}

// FillSet overwrites s with the current combination. s must have capacity n.
func (rd *RevolvingDoor) FillSet(s *Set) {
	s.Clear()
	for _, v := range rd.Members() {
		s.Add(v)
	}
}

// Next advances to the successor combination, reporting the element
// swapped out and the element swapped in. ok is false — and the
// combination unchanged — when the current combination is the last one
// (rank C(n,k)−1).
func (rd *RevolvingDoor) Next() (out, in int, ok bool) {
	c, t, n := rd.c, rd.k, rd.n
	if t == 0 || t == n {
		return 0, 0, false
	}
	// R3, the easy case: only the smallest element moves.
	if t&1 == 1 {
		if c[1]+1 < c[2] {
			out = c[1]
			c[1]++
			return out, c[1], true
		}
	} else if c[1] > 0 {
		out = c[1]
		c[1]--
		return out, c[1], true
	}
	return rd.nextHard(t&1 == 1)
}

// nextHard is Algorithm R's R4/R5 chain, entered at j = 2 after the easy
// case failed: odd k starts by trying to decrease c_2 (R4), even k by
// trying to increase c_2 (R5). R5 at j = k reads the c[k+1] = n sentinel;
// the parity of the alternation guarantees R4 is never reached at j = k+1.
func (rd *RevolvingDoor) nextHard(tryDecrease bool) (out, in int, ok bool) {
	c, t := rd.c, rd.k
	for j := 2; j <= t; j++ {
		if tryDecrease {
			// R4 (here c[j] == c[j-1]+1): move c_j down to c_{j-1}, pack
			// c_{j-1} at the bottom.
			if c[j] >= j {
				out, in = c[j], j-2
				c[j] = c[j-1]
				c[j-1] = j - 2
				return out, in, true
			}
		} else {
			// R5 (here c[j-1] == j-2): move c_j up, pulling its old value
			// down to position j-1.
			if c[j]+1 < c[j+1] {
				out, in = j-2, c[j]+1
				c[j-1] = c[j]
				c[j]++
				return out, in, true
			}
		}
		tryDecrease = !tryDecrease
	}
	return 0, 0, false
}

// NextBatch fills outs/ins with up to len(outs) successor swaps, advancing
// the enumerator past all of them, and returns how many were produced — a
// short count means the enumeration is exhausted. The batch form keeps the
// dominant "easy case" runs (only the smallest element sliding up or down)
// in registers, which matters to the expansion engine's per-set budget.
// ins must be at least as long as outs.
func (rd *RevolvingDoor) NextBatch(outs, ins []int) int {
	c, t, n := rd.c, rd.k, rd.n
	if t == 0 || t == n || len(outs) == 0 {
		return 0
	}
	if len(ins) < len(outs) {
		panic("bitset: NextBatch ins shorter than outs")
	}
	limit := len(outs)
	outs, ins = outs[:limit], ins[:limit]
	m := 0
	odd := t&1 == 1
	for {
		// The easy-case run: only the smallest element slides.
		if odd {
			c1, c2 := c[1], c[2]
			for m < limit && c1+1 < c2 {
				outs[m] = c1
				c1++
				ins[m] = c1
				m++
			}
			c[1] = c1
		} else {
			c1 := c[1]
			for m < limit && c1 > 0 {
				outs[m] = c1
				c1--
				ins[m] = c1
				m++
			}
			c[1] = c1
		}
		if m >= limit {
			return m
		}
		// The R4/R5 chain, inlined: a hard step ends every easy run, so a
		// call here would be paid every few swaps.
		tryDecrease := odd
		for j := 2; ; j++ {
			if j > t {
				return m
			}
			if tryDecrease {
				if c[j] >= j {
					outs[m], ins[m] = c[j], j-2
					c[j] = c[j-1]
					c[j-1] = j - 2
					m++
					break
				}
			} else if c[j]+1 < c[j+1] {
				outs[m], ins[m] = j-2, c[j]+1
				c[j-1] = c[j]
				c[j]++
				m++
				break
			}
			tryDecrease = !tryDecrease
		}
	}
}
