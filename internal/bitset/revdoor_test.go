package bitset

import (
	"math"
	"math/bits"
	"testing"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {30, 15, 155117520},
		{72, 3, 59640}, {5, 6, 0}, {5, -1, 0}, {200, 100, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// TestRevolvingDoorWalk exhaustively checks, for every (n, k) with
// n ≤ 10, that the successor walk from rank 0:
//   - visits exactly C(n,k) distinct combinations,
//   - performs exactly one out/one in swap per step (reported correctly),
//   - agrees with Reset's unranking at every rank (walk ↔ bijection), and
//   - has Rank as its inverse.
func TestRevolvingDoorWalk(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			total := Binomial(n, k)
			rd := NewRevolvingDoor(n, k, 0)
			seen := map[uint64]bool{}
			cur := rd.Mask()
			for r := uint64(0); ; r++ {
				if bits.OnesCount64(cur) != k {
					t.Fatalf("n=%d k=%d rank %d: popcount %b", n, k, r, cur)
				}
				if seen[cur] {
					t.Fatalf("n=%d k=%d rank %d: revisited %b", n, k, r, cur)
				}
				seen[cur] = true
				if got := rd.Mask(); got != cur {
					t.Fatalf("n=%d k=%d rank %d: internal state %b, walk %b", n, k, r, got, cur)
				}
				want := NewRevolvingDoor(n, k, r).Mask()
				if cur != want {
					t.Fatalf("n=%d k=%d rank %d: walk %b, unrank %b", n, k, r, cur, want)
				}
				if got := rd.Rank(); got != r {
					t.Fatalf("n=%d k=%d: Rank(%b) = %d, want %d", n, k, cur, got, r)
				}
				out, in, ok := rd.Next()
				if !ok {
					if r != total-1 {
						t.Fatalf("n=%d k=%d: exhausted at rank %d of %d", n, k, r, total)
					}
					break
				}
				if out == in || cur&(1<<uint(out)) == 0 || cur&(1<<uint(in)) != 0 {
					t.Fatalf("n=%d k=%d rank %d: bad swap out=%d in=%d of %b", n, k, r, out, in, cur)
				}
				cur = cur ^ (1 << uint(out)) | (1 << uint(in))
			}
			if uint64(len(seen)) != total {
				t.Fatalf("n=%d k=%d: visited %d of %d combinations", n, k, len(seen), total)
			}
		}
	}
}

// TestRevolvingDoorNextBatch: the batch walk must produce exactly the
// swaps of repeated Next calls, across batch sizes that do and do not
// divide the sequence length, from every starting rank.
func TestRevolvingDoorNextBatch(t *testing.T) {
	const n, k = 9, 4
	total := Binomial(n, k)
	for _, batch := range []int{1, 2, 3, 7, 64, 1024} {
		for start := uint64(0); start < total; start += 17 {
			a := NewRevolvingDoor(n, k, start)
			b := NewRevolvingDoor(n, k, start)
			outs, ins := make([]int, batch), make([]int, batch)
			for {
				m := a.NextBatch(outs, ins)
				for i := 0; i < m; i++ {
					out, in, ok := b.Next()
					if !ok {
						t.Fatalf("batch %d start %d: batch overran Next", batch, start)
					}
					if outs[i] != out || ins[i] != in {
						t.Fatalf("batch %d start %d: swap (%d,%d) != Next (%d,%d)",
							batch, start, outs[i], ins[i], out, in)
					}
				}
				if m < batch {
					if _, _, ok := b.Next(); ok {
						t.Fatalf("batch %d start %d: batch ended early", batch, start)
					}
					break
				}
			}
			if a.Mask() != b.Mask() {
				t.Fatalf("batch %d start %d: final states differ", batch, start)
			}
		}
	}
}

func TestRevolvingDoorFillSetAndMembers(t *testing.T) {
	rd := NewRevolvingDoor(70, 3, 41)
	s := New(70)
	rd.FillSet(s)
	mem := rd.Members()
	if s.Count() != 3 || len(mem) != 3 {
		t.Fatalf("count %d, members %v", s.Count(), mem)
	}
	for i, v := range mem {
		if !s.Contains(v) {
			t.Fatalf("member %d missing from set", v)
		}
		if i > 0 && mem[i-1] >= v {
			t.Fatalf("members not increasing: %v", mem)
		}
	}
	// Swaps keep large-n state consistent with FillSet.
	for i := 0; i < 100; i++ {
		out, in, ok := rd.Next()
		if !ok {
			break
		}
		s.Remove(out)
		s.Add(in)
		s2 := New(70)
		rd.FillSet(s2)
		if !s.Equal(s2) {
			t.Fatalf("step %d: swap state diverged", i)
		}
	}
}

func TestRevolvingDoorEdgeCases(t *testing.T) {
	// k = 0 and k = n have a single combination and no successor.
	for _, k := range []int{0, 6} {
		rd := NewRevolvingDoor(6, k, 0)
		if _, _, ok := rd.Next(); ok {
			t.Fatalf("k=%d: single combination should have no successor", k)
		}
		if m := rd.NextBatch(make([]int, 4), make([]int, 4)); m != 0 {
			t.Fatalf("k=%d: NextBatch produced %d swaps", k, m)
		}
	}
	// k = 1 enumerates singletons in increasing order.
	rd := NewRevolvingDoor(5, 1, 0)
	for want := 0; want < 5; want++ {
		if got := rd.Members()[0]; got != want {
			t.Fatalf("singleton rank %d = %d", want, got)
		}
		_, _, ok := rd.Next()
		if ok != (want < 4) {
			t.Fatalf("singleton successor at %d: ok=%v", want, ok)
		}
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad k", func() { NewRevolvingDoor(4, 5, 0) })
	mustPanic("bad rank", func() { NewRevolvingDoor(4, 2, 6) })
	mustPanic("Mask n>64", func() { NewRevolvingDoor(65, 2, 0).Mask() })
}
