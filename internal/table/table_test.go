package table

import (
	"strings"
	"testing"
)

func sample() *Table {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	tb.Note = "note line"
	return tb
}

func TestText(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "2.5", "note line", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Text missing %q in:\n%s", want, out)
		}
	}
	// Alignment: every data line should be at least as wide as the header
	// fields joined.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### Demo", "| name | value |", "| --- | --- |", "| alpha | 1 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Markdown missing %q in:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow("x,y", `quote"inside`)
	out := tb.CSV()
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong: %s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("t", "v")
	tb.AddRow(1.0 / 3.0)
	if !strings.Contains(tb.Text(), "0.3333") {
		t.Fatalf("float not formatted to 4 significant digits: %s", tb.Text())
	}
	tb2 := New("t", "v")
	tb2.AddRow(float32(2.5))
	if !strings.Contains(tb2.Text(), "2.5") {
		t.Fatal("float32 formatting")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("", "h1")
	out := tb.Text()
	if strings.Contains(out, "==") {
		t.Fatal("untitled table should not print title banner")
	}
	if !strings.Contains(out, "h1") {
		t.Fatal("header missing")
	}
}

func TestUnicodeWidths(t *testing.T) {
	tb := New("t", "col")
	tb.AddRow("βw=Ω(β/log∆)")
	out := tb.Text()
	if !strings.Contains(out, "βw=Ω(β/log∆)") {
		t.Fatal("unicode cell mangled")
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := New("t", "|N|")
	tb.AddRow("a|b")
	out := tb.Markdown()
	if !strings.Contains(out, `\|N\|`) || !strings.Contains(out, `a\|b`) {
		t.Fatalf("pipes not escaped: %s", out)
	}
}
