// Package table renders experiment results as aligned text, Markdown, or
// CSV. Every experiment in the harness returns a Table so the CLI, the
// benchmarks, and EXPERIMENTS.md generation share one formatting path.
package table

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Note   string // free-form caption (claim being checked, pass/fail, ...)
	Header []string
	Rows   [][]string
}

// New creates an empty table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the maximum display width of every column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(w) {
				pad = w[i] - len([]rune(c))
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table. Pipe
// characters inside cells (e.g. the set-cardinality notation |N|) are
// escaped so they do not break the table grid.
func (t *Table) Markdown() string {
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", `\|`)
		}
		return out
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(esc(t.Header), " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(esc(row), " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
