package lru

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(100)
	val := bytes.Repeat([]byte("x"), 40)
	c.Put("a", val)
	c.Put("b", val)
	// Touch "a" so "b" is the LRU victim when "c" overflows the budget.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", val)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats wrong after eviction: %+v", st)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(10)
	c.Put("huge", bytes.Repeat([]byte("x"), 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than the budget must not be cached")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a-longer-value"))
	got, ok := c.Get("k")
	if !ok || string(got) != "a-longer-value" {
		t.Fatalf("got %q %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("a-longer-value")) {
		t.Fatalf("stats wrong after update: %+v", st)
	}
}

func TestPeekDoesNotCountMiss(t *testing.T) {
	c := New(100)
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("peek hit on empty cache")
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Fatalf("peek counted a miss: %+v", st)
	}
	c.Put("k", []byte("v"))
	if _, ok := c.Peek("k"); !ok {
		t.Fatal("peek missed a present key")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("peek find must count as a hit: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("corrupt value for %s: %q", key, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
