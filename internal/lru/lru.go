// Package lru provides the byte-budgeted LRU body cache shared by the
// wexpd result cache and the shard router's edge cache: canonical
// request key → the exact response bytes served for it. Storing bodies
// (rather than decoded results) is what makes the caching contract
// byte-level: a hit replays the previous response verbatim.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU of byte values bounded by total byte size.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key string
	val []byte
}

// New returns a cache bounded to maxBytes of stored values. maxBytes
// must be positive; callers map their own zero-default before calling.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		panic("lru: non-positive byte budget")
	}
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used and
// counting a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	return c.lookup(key, true)
}

// Peek is Get without the miss accounting: used for the double-check
// inside a singleflight execution, whose request already recorded its
// miss before entering the flight. A find still counts as a hit (bytes
// are served from cache) and refreshes recency.
func (c *Cache) Peek(key string) ([]byte, bool) {
	return c.lookup(key, false)
}

func (c *Cache) lookup(key string, countMiss bool) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores the value for key and evicts least-recently-used entries
// until the byte budget holds. A value larger than the whole budget is
// not cached at all (it would only evict everything else for one entry).
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.curBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, val: val})
		c.items[key] = el
		c.curBytes += int64(len(val))
	}
	for c.curBytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.curBytes -= int64(len(e.val))
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Bytes:     c.curBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
