package router

import (
	"fmt"
	"testing"
)

// TestPlaceGolden pins placement for a fixed fleet: the function must
// stay a pure, stable function of (backends, key) across refactors —
// changing it silently would re-shard every deployed fleet's stores.
func TestPlaceGolden(t *testing.T) {
	backends := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
	golden := []struct {
		key  string
		want int
	}{
		{"0f7c3e2a9d1b4c5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6", 1},
		{"family:hypercube/10", 2},
		{"family:torus/32", 2},
		{"experiments:ids=E2&quick=1", 0},
		{"abc", 2},
		{"", 1},
		{"job-000001", 1},
	}
	for _, g := range golden {
		if got := Place(backends, g.key); got != g.want {
			t.Errorf("Place(%q) = %d, want %d", g.key, got, g.want)
		}
	}
	if Place(nil, "anything") != -1 {
		t.Error("empty backend list must place to -1")
	}
}

// TestPlacePurity: repeated evaluation and backend-order permutation give
// the same owner (placement depends on the URL strings, not their order).
func TestPlacePurity(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	permuted := []string{"http://d:1", "http://b:1", "http://a:1", "http://c:1"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := Place(backends, key)
		if again := Place(backends, key); again != first {
			t.Fatalf("Place(%q) not deterministic: %d then %d", key, first, again)
		}
		if backends[first] != permuted[Place(permuted, key)] {
			t.Fatalf("Place(%q) depends on backend order", key)
		}
	}
}

// TestPlaceRemovalChurn pins the rendezvous minimal-churn property: when
// one backend leaves, only the keys it owned move; every other key keeps
// its backend. The moved fraction stays near 1/N (within a generous
// tolerance — FNV over short keys is not a perfect die).
func TestPlaceRemovalChurn(t *testing.T) {
	full := []string{"http://s0:1", "http://s1:1", "http://s2:1", "http://s3:1", "http://s4:1"}
	const keys = 2000
	for removed := 0; removed < len(full); removed++ {
		reduced := append(append([]string(nil), full[:removed]...), full[removed+1:]...)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("digest-%d-%d", i, i*i)
			before := Place(full, key)
			after := Place(reduced, key)
			if before == removed {
				moved++
				continue
			}
			// Survivor keys must not move: same backend URL before and after.
			if full[before] != reduced[after] {
				t.Fatalf("key %q moved from surviving backend %s to %s when %s left",
					key, full[before], reduced[after], full[removed])
			}
		}
		// The removed backend owned ≈ keys/5; its keys are the only ones
		// that moved. Bound the owned share to [1/2, 2]× fair share to
		// catch gross hash-quality or tie-break regressions.
		fair := keys / len(full)
		if moved < fair/2 || moved > 2*fair {
			t.Fatalf("backend %d owned %d of %d keys, expected ≈%d (hash imbalance)",
				removed, moved, keys, fair)
		}
	}
}

// FuzzPlace: for arbitrary keys, placement is in range, deterministic,
// and minimally churning under removal of a non-owner.
func FuzzPlace(f *testing.F) {
	f.Add("seed-key")
	f.Add("")
	f.Add("family:hypercube/10")
	backends := []string{"http://s0:1", "http://s1:1", "http://s2:1", "http://s3:1"}
	f.Fuzz(func(t *testing.T, key string) {
		idx := Place(backends, key)
		if idx < 0 || idx >= len(backends) {
			t.Fatalf("Place(%q) = %d out of range", key, idx)
		}
		if Place(backends, key) != idx {
			t.Fatalf("Place(%q) not deterministic", key)
		}
		// Remove a backend that is NOT the owner: the owner must not change.
		victim := (idx + 1) % len(backends)
		reduced := append(append([]string(nil), backends[:victim]...), backends[victim+1:]...)
		if backends[idx] != reduced[Place(reduced, key)] {
			t.Fatalf("Place(%q): owner changed when a non-owner left", key)
		}
	})
}
