// Package router implements wexprouter, the shard router in front of a
// fleet of wexpd backends. Graphs — and every computation addressing a
// graph — are placed on a backend by rendezvous (highest-random-weight)
// hashing of the graph's content digest, so:
//
//   - placement is a pure function of (backend list, key): every router
//     instance, and every restart, routes a digest to the same backend —
//     no shared state, no rebalancing protocol;
//   - each backend's content-addressed store and result cache only ever
//     see its own shard of the digest space, multiplying the fleet's
//     effective cache capacity instead of replicating one cache N times;
//   - removing a backend remaps only the keys it owned (≈1/N of the
//     space); every other key keeps its placement — the minimal-churn
//     property the property tests pin.
//
// The router also lifts request coalescing to the fleet edge: N identical
// concurrent requests collapse to one forwarded request (and therefore
// one engine computation fleet-wide), and an optional byte-level edge
// cache replays hot responses without a backend round trip — sound for
// the same reason the backend cache is: response bodies are deterministic
// functions of the canonical request.
package router

import "hash/fnv"

// Place returns the index of the backend that owns key under rendezvous
// hashing: the backend whose hash(backend, key) score is highest. It is a
// pure function of its arguments — no state, no history. Ties (which need
// a hash collision) break toward the lexicographically smallest backend
// name so the choice stays total and deterministic. An empty backend list
// returns -1.
func Place(backends []string, key string) int {
	best := -1
	var bestScore uint64
	for i, b := range backends {
		h := fnv.New64a()
		h.Write([]byte(b))
		h.Write([]byte{0}) // separate backend from key: no concatenation aliasing
		h.Write([]byte(key))
		score := h.Sum64()
		if best == -1 || score > bestScore || (score == bestScore && b < backends[best]) {
			best, bestScore = i, score
		}
	}
	return best
}
