package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wexp/internal/flight"
	"wexp/internal/graph"
	"wexp/internal/lru"
	"wexp/internal/service"
)

// maxUploadBytes bounds graph uploads, mirroring the backend's bound.
const maxUploadBytes = 32 << 20

// Config tunes the router. Backends is required; everything else has a
// working zero value.
type Config struct {
	// Backends is the static list of wexpd base URLs (e.g.
	// "http://127.0.0.1:8081") the digest space is sharded across. Order
	// matters only for the b<i> job-ID prefixes; placement depends on the
	// URL strings themselves.
	Backends []string
	// CacheBytes enables the byte-level edge response cache with the given
	// budget. 0 disables it (the router still coalesces identical
	// in-flight requests).
	CacheBytes int64
	// Client performs the forwarded requests (nil = a client with no
	// timeout — jobs and cold computations can legitimately take long).
	Client *http.Client
}

// backend is one wexpd instance plus its request counters.
type backend struct {
	url       string
	requests  atomic.Int64
	errors    atomic.Int64
	latencyNS atomic.Int64
}

// Router is the shard-routing http.Handler.
type Router struct {
	backends []*backend
	urls     []string // backend URLs, aligned with backends; the Place input
	client   *http.Client
	flight   *flight.Group[proxyReply]
	cache    *lru.Cache // nil = edge cache disabled
	mux      *http.ServeMux
}

// proxyReply is a captured backend response — the unit the edge
// singleflight shares and the edge cache stores (status 200 only).
type proxyReply struct {
	Status      int
	ContentType string
	XCache      string
	Body        []byte
}

// New validates cfg and returns a ready-to-serve Router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	seen := map[string]bool{}
	rt := &Router{
		client: cfg.Client,
		flight: flight.New[proxyReply](),
		mux:    http.NewServeMux(),
	}
	for _, raw := range cfg.Backends {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" || seen[u] {
			return nil, fmt.Errorf("router: empty or duplicate backend %q", raw)
		}
		seen[u] = true
		rt.backends = append(rt.backends, &backend{url: u})
		rt.urls = append(rt.urls, u)
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if cfg.CacheBytes > 0 {
		rt.cache = lru.New(cfg.CacheBytes)
	}
	rt.routes()
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	rt.mux.HandleFunc("POST /v1/graphs", rt.handleGraphPut)
	rt.mux.HandleFunc("GET /v1/graphs", rt.handleGraphList)
	rt.mux.HandleFunc("GET /v1/graphs/{digest}", rt.handleGraphByDigest)
	rt.mux.HandleFunc("GET /v1/graphs/{digest}/edges", rt.handleGraphByDigest)

	rt.mux.HandleFunc("GET /v1/expansion", rt.handleCompute)
	rt.mux.HandleFunc("GET /v1/spokesman", rt.handleCompute)
	rt.mux.HandleFunc("GET /v1/broadcast", rt.handleCompute)
	rt.mux.HandleFunc("POST /v1/experiments", rt.handleExperiments)

	rt.mux.HandleFunc("GET /v1/jobs", rt.handleJobList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleJob)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob)
}

// --- plumbing ----------------------------------------------------------------

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func qBool(q url.Values, key string) bool {
	switch strings.ToLower(q.Get(key)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// forward sends one request to backend idx and captures the reply,
// recording the per-backend counters. Transport failures and backend 5xx
// both count as errors.
func (rt *Router) forward(idx int, method, pathq string, body []byte) (proxyReply, error) {
	b := rt.backends[idx]
	b.requests.Add(1)
	start := time.Now()
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, b.url+pathq, reader)
	if err != nil {
		b.errors.Add(1)
		return proxyReply{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		b.errors.Add(1)
		return proxyReply{}, fmt.Errorf("router: backend %d (%s): %v", idx, b.url, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	b.latencyNS.Add(time.Since(start).Nanoseconds())
	if err != nil {
		b.errors.Add(1)
		return proxyReply{}, fmt.Errorf("router: read backend %d response: %v", idx, err)
	}
	if resp.StatusCode >= 500 {
		b.errors.Add(1)
	}
	return proxyReply{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		XCache:      resp.Header.Get("X-Cache"),
		Body:        respBody,
	}, nil
}

// writeReply relays a captured backend response, stamping which backend
// served it and how the edge handled it (proxy, coalesced, or edge-hit).
func writeReply(w http.ResponseWriter, rep proxyReply, idx int, edge string) {
	if rep.ContentType != "" {
		w.Header().Set("Content-Type", rep.ContentType)
	}
	if rep.XCache != "" {
		w.Header().Set("X-Cache", rep.XCache)
	}
	w.Header().Set("X-Backend", strconv.Itoa(idx))
	w.Header().Set("X-Edge", edge)
	w.WriteHeader(rep.Status)
	w.Write(rep.Body)
}

// relay forwards without coalescing or caching (mutating or job-creating
// requests), rewriting any job view in the response with the backend's
// ID prefix.
func (rt *Router) relay(w http.ResponseWriter, idx int, method, pathq string, body []byte) {
	rep, err := rt.forward(idx, method, pathq, body)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	rep.Body = rt.rewriteJobBody(rep.Body, idx)
	writeReply(w, rep, idx, "proxy")
}

// serveCoalesced serves an idempotent, deterministic GET through the edge
// cache (if enabled) and the edge singleflight: identical concurrent
// requests across all clients of this router collapse to one forwarded
// request — and, combined with the backend's own singleflight, one engine
// computation fleet-wide.
func (rt *Router) serveCoalesced(w http.ResponseWriter, r *http.Request, idx int, pathq string) {
	if rt.cache != nil {
		if body, ok := rt.cache.Get(pathq); ok {
			writeReply(w, proxyReply{Status: http.StatusOK, ContentType: "application/json", Body: body}, idx, "hit")
			return
		}
	}
	rep, err, shared := rt.flight.Do(r.Context(), pathq, func(context.Context) (proxyReply, error) {
		rep, err := rt.forward(idx, http.MethodGet, pathq, nil)
		if err == nil && rep.Status == http.StatusOK && rt.cache != nil {
			rt.cache.Put(pathq, rep.Body)
		}
		return rep, err
	})
	if err != nil {
		writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	edge := "miss"
	if shared {
		edge = "coalesced"
	}
	writeReply(w, rep, idx, edge)
}

// --- routing keys ------------------------------------------------------------

// routeKey derives the placement key of a request that addresses a graph:
// the digest itself, or the family/size pair (which the owning backend
// resolves to the same digest deterministically, so both spellings of the
// same graph land together once stored — family keys route the *build*;
// after that, digest-addressed requests may name any backend's store, and
// each family instance lives where its family key routes).
func routeKey(q url.Values) (string, error) {
	if d := q.Get("graph"); d != "" {
		return d, nil
	}
	if f := q.Get("family"); f != "" {
		return "family:" + f + "/" + q.Get("size"), nil
	}
	return "", fmt.Errorf("missing graph=<digest> or family=<name>&size=<n>")
}

// place maps a key to its owning backend index.
func (rt *Router) place(key string) int { return Place(rt.urls, key) }

// canonicalPathQ rebuilds the forwarded path?query with the query in
// url.Values.Encode's sorted key order — the canonical form, so query
// permutations of one request share an edge-cache entry and a flight.
func canonicalPathQ(r *http.Request) string {
	q := r.URL.Query()
	if len(q) == 0 {
		return r.URL.Path
	}
	return r.URL.Path + "?" + q.Encode()
}

// --- graphs ------------------------------------------------------------------

func (rt *Router) handleGraphPut(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("family") != "" {
		key, _ := routeKey(q)
		rt.relay(w, rt.place(key), http.MethodPost, canonicalPathQ(r), nil)
		return
	}
	// An upload routes by content: parse the edge list here to compute the
	// digest the owning backend will store it under.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(body))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parse edge list: %v", err)
		return
	}
	rt.relay(w, rt.place(graph.DigestString(g)), http.MethodPost, canonicalPathQ(r), body)
}

func (rt *Router) handleGraphByDigest(w http.ResponseWriter, r *http.Request) {
	rt.serveCoalesced(w, r, rt.place(r.PathValue("digest")), canonicalPathQ(r))
}

// handleGraphList fans out to every backend and merges the shards into
// one deterministic listing (sorted by digest, like a single node's).
func (rt *Router) handleGraphList(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Count  int                   `json:"count"`
		Graphs []service.StoredGraph `json:"graphs"`
	}
	var merged []service.StoredGraph
	for idx := range rt.backends {
		rep, err := rt.forward(idx, http.MethodGet, "/v1/graphs", nil)
		if err != nil {
			writeErr(w, http.StatusBadGateway, "%v", err)
			return
		}
		if rep.Status != http.StatusOK {
			writeErr(w, http.StatusBadGateway, "backend %d listing: status %d", idx, rep.Status)
			return
		}
		var l listing
		if err := json.Unmarshal(rep.Body, &l); err != nil {
			writeErr(w, http.StatusBadGateway, "backend %d listing: %v", idx, err)
			return
		}
		merged = append(merged, l.Graphs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Digest < merged[j].Digest })
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(listing{Count: len(merged), Graphs: merged})
	w.Write(body)
}

// --- computations ------------------------------------------------------------

func (rt *Router) handleCompute(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, err := routeKey(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	idx := rt.place(key)
	if qBool(q, "async") {
		rt.relay(w, idx, http.MethodGet, canonicalPathQ(r), nil)
		return
	}
	rt.serveCoalesced(w, r, idx, canonicalPathQ(r))
}

// handleExperiments routes a suite run by its canonical parameter set (no
// graph digest is involved — the suite generates its own graphs), so
// repeated runs of one configuration land on one backend and memoize.
func (rt *Router) handleExperiments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	canon := url.Values{}
	for _, k := range []string{"ids", "seed", "quick", "trials"} {
		if v := q.Get(k); v != "" {
			canon.Set(k, v)
		}
	}
	rt.relay(w, rt.place("experiments:"+canon.Encode()), http.MethodPost, canonicalPathQ(r), nil)
}

// --- jobs --------------------------------------------------------------------

// Job IDs are per-backend sequences; the router namespaces them with a
// b<idx>. prefix ("b2.job-000017") so a fleet-wide job ID names both the
// backend and its local job. splitJobRef inverts the prefix.
func splitJobRef(id string) (int, string, bool) {
	rest, ok := strings.CutPrefix(id, "b")
	if !ok {
		return 0, "", false
	}
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 {
		return 0, "", false
	}
	idx, err := strconv.Atoi(rest[:dot])
	if err != nil || idx < 0 {
		return 0, "", false
	}
	return idx, rest[dot+1:], true
}

// rewriteJobView namespaces one job view in place.
func rewriteJobView(v *service.JobView, idx int) {
	v.ID = fmt.Sprintf("b%d.%s", idx, v.ID)
	if v.ResultURL != "" {
		v.ResultURL = "/v1/jobs/" + v.ID + "/result"
	}
}

// rewriteJobBody namespaces a single-job response body (202 Accepted,
// job views, cancellations). Non-job bodies pass through untouched.
func (rt *Router) rewriteJobBody(body []byte, idx int) []byte {
	var v service.JobView
	if err := json.Unmarshal(body, &v); err != nil || v.ID == "" || v.State == "" {
		return body
	}
	rewriteJobView(&v, idx)
	out, err := json.Marshal(v)
	if err != nil {
		return body
	}
	return out
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	idx, localID, ok := splitJobRef(r.PathValue("id"))
	if !ok || idx >= len(rt.backends) {
		writeErr(w, http.StatusNotFound, "unknown job %s (router IDs look like b0.job-000001)", r.PathValue("id"))
		return
	}
	pathq := strings.Replace(r.URL.Path, r.PathValue("id"), localID, 1)
	rep, err := rt.forward(idx, r.Method, pathq, nil)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "%v", err)
		return
	}
	// Result bodies are the computation's bytes — relayed verbatim so a
	// routed fleet is byte-identical to a single node. Everything else is
	// a job view that needs its fleet-wide name back.
	if !strings.HasSuffix(pathq, "/result") {
		rep.Body = rt.rewriteJobBody(rep.Body, idx)
	}
	writeReply(w, rep, idx, "proxy")
}

func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	type listing struct {
		Count int               `json:"count"`
		Jobs  []service.JobView `json:"jobs"`
	}
	var merged []service.JobView
	for idx := range rt.backends {
		rep, err := rt.forward(idx, http.MethodGet, "/v1/jobs", nil)
		if err != nil {
			writeErr(w, http.StatusBadGateway, "%v", err)
			return
		}
		if rep.Status != http.StatusOK {
			writeErr(w, http.StatusBadGateway, "backend %d jobs: status %d", idx, rep.Status)
			return
		}
		var l listing
		if err := json.Unmarshal(rep.Body, &l); err != nil {
			writeErr(w, http.StatusBadGateway, "backend %d jobs: %v", idx, err)
			return
		}
		for i := range l.Jobs {
			rewriteJobView(&l.Jobs[i], idx)
		}
		merged = append(merged, l.Jobs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(listing{Count: len(merged), Jobs: merged})
	w.Write(body)
}

// --- health and metrics ------------------------------------------------------

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"status": "ok", "backends": len(rt.backends)})
}

// BackendMetrics is one backend's counters as seen from the router.
type BackendMetrics struct {
	URL       string
	Requests  int64
	Errors    int64
	LatencyNS int64
}

// Metrics is a point-in-time snapshot of the router counters.
type Metrics struct {
	Backends []BackendMetrics
	// Coalesced counts requests served by waiting on another request's
	// in-flight forward; Forwards counts edge singleflight executions.
	Coalesced int64
	Forwards  int64
	// Edge cache counters (all zero when the edge cache is disabled).
	EdgeHits      int64
	EdgeMisses    int64
	EdgeEntries   int64
	EdgeBytes     int64
	EdgeEvictions int64
}

// Snapshot collects the current metrics.
func (rt *Router) Snapshot() Metrics {
	fs := rt.flight.Stats()
	m := Metrics{Coalesced: fs.Coalesced, Forwards: fs.Executed}
	if rt.cache != nil {
		cs := rt.cache.Stats()
		m.EdgeHits, m.EdgeMisses = cs.Hits, cs.Misses
		m.EdgeEntries, m.EdgeBytes, m.EdgeEvictions = int64(cs.Entries), cs.Bytes, cs.Evictions
	}
	for _, b := range rt.backends {
		m.Backends = append(m.Backends, BackendMetrics{
			URL:       b.url,
			Requests:  b.requests.Load(),
			Errors:    b.errors.Load(),
			LatencyNS: b.latencyNS.Load(),
		})
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := rt.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "wexprouter_backends %d\n", len(m.Backends))
	fmt.Fprintf(w, "wexprouter_coalesced_requests %d\n", m.Coalesced)
	fmt.Fprintf(w, "wexprouter_edge_cache_bytes %d\n", m.EdgeBytes)
	fmt.Fprintf(w, "wexprouter_edge_cache_entries %d\n", m.EdgeEntries)
	fmt.Fprintf(w, "wexprouter_edge_cache_evictions %d\n", m.EdgeEvictions)
	fmt.Fprintf(w, "wexprouter_edge_cache_hits %d\n", m.EdgeHits)
	fmt.Fprintf(w, "wexprouter_edge_cache_misses %d\n", m.EdgeMisses)
	fmt.Fprintf(w, "wexprouter_forwards %d\n", m.Forwards)
	for i, b := range m.Backends {
		fmt.Fprintf(w, "wexprouter_backend_requests{backend=\"%d\",url=%q} %d\n", i, b.URL, b.Requests)
	}
	for i, b := range m.Backends {
		fmt.Fprintf(w, "wexprouter_backend_errors{backend=\"%d\",url=%q} %d\n", i, b.URL, b.Errors)
	}
	for i, b := range m.Backends {
		fmt.Fprintf(w, "wexprouter_backend_latency_ns{backend=\"%d\",url=%q} %d\n", i, b.URL, b.LatencyNS)
	}
}
