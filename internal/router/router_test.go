package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/service"
)

// newFleet starts n in-process wexpd backends and a router over them.
func newFleet(t *testing.T, n int, cacheBytes int64) ([]*service.Server, *Router, *httptest.Server) {
	t.Helper()
	var servers []*service.Server
	var urls []string
	for i := 0; i < n; i++ {
		s := service.New(service.Config{Workers: 1})
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}
	rt, err := New(Config{Backends: urls, CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return servers, rt, front
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func doReq(t *testing.T, method, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestUploadRoutesByContent: an uploaded graph lands on exactly the
// backend rendezvous hashing assigns its digest, re-upload dedupes
// through the router, and digest reads route back to the owner.
func TestUploadRoutesByContent(t *testing.T) {
	servers, rt, front := newFleet(t, 3, 0)
	var edges bytes.Buffer
	if err := graph.WriteEdgeList(&edges, gen.Hypercube(3)); err != nil {
		t.Fatal(err)
	}
	payload := edges.Bytes()

	code, body := doReq(t, "POST", front.URL+"/v1/graphs", bytes.NewReader(payload))
	if code != http.StatusCreated {
		t.Fatalf("upload via router: %d %s", code, body)
	}
	var put struct {
		Digest  string `json:"digest"`
		Existed bool   `json:"existed"`
	}
	if err := json.Unmarshal(body, &put); err != nil {
		t.Fatal(err)
	}
	owner := rt.place(put.Digest)
	for i, s := range servers {
		want := 0
		if i == owner {
			want = 1
		}
		if got := s.Snapshot().Graphs; got != int64(want) {
			t.Fatalf("backend %d holds %d graphs, want %d (owner %d)", i, got, want, owner)
		}
	}

	if code, body = doReq(t, "POST", front.URL+"/v1/graphs", bytes.NewReader(payload)); code != http.StatusOK {
		t.Fatalf("re-upload: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &put); err != nil || !put.Existed {
		t.Fatalf("re-upload did not dedupe: %s (err %v)", body, err)
	}

	code, viaRouter, hdr := get(t, front.URL+"/v1/graphs/"+put.Digest)
	if code != http.StatusOK {
		t.Fatalf("digest read via router: %d", code)
	}
	if hdr.Get("X-Backend") != fmt.Sprint(owner) {
		t.Fatalf("digest read served by backend %s, want %d", hdr.Get("X-Backend"), owner)
	}
	var fleetList struct {
		Count int `json:"count"`
	}
	_, listBody, _ := get(t, front.URL+"/v1/graphs")
	if err := json.Unmarshal(listBody, &fleetList); err != nil || fleetList.Count != 1 {
		t.Fatalf("merged listing: %s", listBody)
	}
	_ = viaRouter
}

// TestRoutedComputeByteIdentical: the same request through the router and
// against a standalone single node produce byte-identical bodies — the
// fleet is a transparent scale-out, not a different service.
func TestRoutedComputeByteIdentical(t *testing.T) {
	_, _, front := newFleet(t, 3, 0)
	q := "/v1/expansion?family=hypercube&size=3&obj=wireless"
	code, routed, _ := get(t, front.URL+q)
	if code != http.StatusOK {
		t.Fatalf("routed compute: %d %s", code, routed)
	}

	single := service.New(service.Config{Workers: 1})
	direct := httptest.NewServer(single)
	defer direct.Close()
	code, ref, _ := get(t, direct.URL+q)
	if code != http.StatusOK {
		t.Fatalf("direct compute: %d", code)
	}
	if !bytes.Equal(routed, ref) {
		t.Fatalf("routed body differs from single-node body:\n%s\nvs\n%s", routed, ref)
	}
}

// TestFleetWideCoalescing is the router-level coalescing barrier: N
// identical concurrent requests through the router against 3 backends
// must trigger exactly ONE engine computation fleet-wide — the edge
// singleflight collapses them to one forwarded request, and the owning
// backend's own singleflight guards the rest.
func TestFleetWideCoalescing(t *testing.T) {
	servers, rt, front := newFleet(t, 3, 0)
	const clients = 8

	arrived := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	for _, s := range servers {
		s.SetComputeHook(func(string) {
			once.Do(func() { close(arrived) })
			<-release
		})
	}

	q := front.URL + "/v1/expansion?family=hypercube&size=3&obj=ordinary"
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := get(t, q)
			if code != http.StatusOK {
				t.Errorf("client %d: status %d body %s", i, code, body)
			}
			bodies[i] = body
		}(i)
	}

	// Wait for the one forwarded request to reach an engine, then for the
	// remaining clients to pile up behind the edge flight.
	<-arrived
	deadline := time.Now().Add(10 * time.Second)
	for rt.Snapshot().Coalesced < clients-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var computations, engineRequests int64
	for _, s := range servers {
		computations += s.Snapshot().Computations
	}
	for _, b := range rt.Snapshot().Backends {
		engineRequests += b.Requests
	}
	if computations != 1 {
		t.Fatalf("fleet ran %d engine computations for %d identical requests, want exactly 1", computations, clients)
	}
	if engineRequests != 1 {
		t.Fatalf("router forwarded %d requests, want exactly 1", engineRequests)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
}

// TestEdgeCacheReplaysWithoutBackend: with the edge cache enabled, a
// repeated request is served at the router without touching any backend.
func TestEdgeCacheReplaysWithoutBackend(t *testing.T) {
	_, rt, front := newFleet(t, 3, 1<<20)
	q := front.URL + "/v1/expansion?family=hypercube&size=2"
	code, first, _ := get(t, q)
	if code != http.StatusOK {
		t.Fatalf("first: %d", code)
	}
	before := int64(0)
	for _, b := range rt.Snapshot().Backends {
		before += b.Requests
	}
	code, second, hdr := get(t, q)
	if code != http.StatusOK || hdr.Get("X-Edge") != "hit" {
		t.Fatalf("second: %d X-Edge=%q, want an edge hit", code, hdr.Get("X-Edge"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("edge cache replayed different bytes")
	}
	after := int64(0)
	for _, b := range rt.Snapshot().Backends {
		after += b.Requests
	}
	if after != before {
		t.Fatalf("edge hit still forwarded: %d → %d backend requests", before, after)
	}

	// Permuted query spellings share the canonical edge entry.
	code, permuted, hdr := get(t, front.URL+"/v1/expansion?size=2&family=hypercube")
	if code != http.StatusOK || hdr.Get("X-Edge") != "hit" || !bytes.Equal(first, permuted) {
		t.Fatalf("permuted query missed the edge cache: %d X-Edge=%q", code, hdr.Get("X-Edge"))
	}
}

// TestJobsThroughRouter: async jobs work fleet-wide — the router
// namespaces job IDs with the owning backend (b<i>.job-NNNNNN), polling
// and results route back through the prefix, the merged job listing shows
// every backend's jobs, and result bytes equal a direct single-node run.
func TestJobsThroughRouter(t *testing.T) {
	_, _, front := newFleet(t, 3, 0)
	code, body := doReq(t, "POST", front.URL+"/v1/experiments?ids=E2&quick=1", nil)
	if code != http.StatusAccepted {
		t.Fatalf("start job: %d %s", code, body)
	}
	var accepted service.JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := splitJobRef(accepted.ID); !ok {
		t.Fatalf("job ID %q is not fleet-namespaced", accepted.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	var view service.JobView
	for {
		code, body, _ := get(t, front.URL+"/v1/jobs/"+accepted.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.State != service.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != service.JobDone {
		t.Fatalf("job: %+v", view)
	}
	if !strings.HasPrefix(view.ResultURL, "/v1/jobs/"+accepted.ID) {
		t.Fatalf("result URL %q not rewritten for the fleet", view.ResultURL)
	}

	code, routed, _ := get(t, front.URL+view.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, routed)
	}
	single := service.New(service.Config{Workers: 1})
	direct := httptest.NewServer(single)
	defer direct.Close()
	code, ref := doReq(t, "POST", direct.URL+"/v1/experiments?ids=E2&quick=1&async=0", nil)
	if code != http.StatusOK {
		t.Fatalf("reference: %d", code)
	}
	if !bytes.Equal(routed, ref) {
		t.Fatal("routed job result differs from a direct single-node run")
	}

	_, listBody, _ := get(t, front.URL+"/v1/jobs")
	var list struct {
		Count int               `json:"count"`
		Jobs  []service.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(listBody, &list); err != nil || list.Count != 1 || list.Jobs[0].ID != accepted.ID {
		t.Fatalf("merged job listing wrong: %s", listBody)
	}

	if code, body, _ := get(t, front.URL+"/v1/jobs/job-000001"); code != http.StatusNotFound {
		t.Fatalf("un-prefixed job ID must 404 at the router: %d %s", code, body)
	}
}
