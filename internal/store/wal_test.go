package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.wal")
}

func TestWALAppendReplay(t *testing.T) {
	path := walPath(t)
	w, stats, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if stats.Records != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("fresh WAL stats = %+v", stats)
	}
	recs := []JobRecord{
		{Job: "job-000001", Event: "accepted", Op: "expansion", Query: "graph=abc&maxk=3", Key: "expansion|g=abc|maxk=3"},
		{Job: "job-000001", Event: "progress", Done: 2, Total: 7},
		{Job: "job-000001", Event: "done", ResultURL: "/v1/jobs/job-000001/result"},
	}
	for i, r := range recs {
		if err := w.Append(r, i != 1); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if w.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", w.Seq())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Append(JobRecord{}, false); err == nil {
		t.Fatalf("Append after Close succeeded")
	}

	var got []JobRecord
	w2, stats, err := OpenWAL(path, func(r JobRecord) { got = append(got, r) })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if stats.Records != 3 || stats.TruncatedBytes != 0 {
		t.Fatalf("replay stats = %+v", stats)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || r.Job != recs[i].Job || r.Event != recs[i].Event {
			t.Fatalf("record %d = %+v, want %+v with seq %d", i, r, recs[i], i+1)
		}
	}
	// Appends continue the sequence after recovery.
	if err := w2.Append(JobRecord{Job: "job-000002", Event: "accepted"}, true); err != nil {
		t.Fatalf("post-recovery Append: %v", err)
	}
	if w2.Seq() != 4 {
		t.Fatalf("post-recovery Seq = %d, want 4", w2.Seq())
	}
}

// TestWALTornTail simulates a crash mid-append: valid records followed by
// a torn frame. Recovery must replay the valid prefix, truncate the tail
// on disk, and leave the log cleanly appendable.
func TestWALTornTail(t *testing.T) {
	tails := map[string]func([]byte) []byte{
		"half header": func(b []byte) []byte { return append(b, 0x05, 0x00) },
		"length, no body": func(b []byte) []byte {
			return binary.LittleEndian.AppendUint32(b, 100)
		},
		"bad checksum": func(b []byte) []byte {
			rec := frameRecord(nil, []byte(`{"seq":9,"job":"x","event":"done"}`))
			rec[5] ^= 0xFF
			return append(b, rec...)
		},
		"absurd length": func(b []byte) []byte {
			return binary.LittleEndian.AppendUint32(b, 1<<30)
		},
		"garbage json": func(b []byte) []byte {
			return frameRecord(b, []byte("not json at all"))
		},
	}
	for name, tear := range tails {
		t.Run(name, func(t *testing.T) {
			path := walPath(t)
			w, _, err := OpenWAL(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			w.Append(JobRecord{Job: "job-000001", Event: "accepted"}, true)
			w.Append(JobRecord{Job: "job-000001", Event: "done"}, true)
			w.Close()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			goodLen := len(data)
			if err := os.WriteFile(path, tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			var got []JobRecord
			w2, stats, err := OpenWAL(path, func(r JobRecord) { got = append(got, r) })
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if stats.Records != 2 {
				t.Fatalf("replayed %d records, want 2", stats.Records)
			}
			if stats.TruncatedBytes == 0 {
				t.Fatalf("no torn tail reported")
			}
			// The file itself is truncated back to the valid prefix.
			if fi, err := os.Stat(path); err != nil || fi.Size() != int64(goodLen) {
				t.Fatalf("file size after recovery = %v (err %v), want %d", fi.Size(), err, goodLen)
			}
			// And appending after recovery yields a clean, fully valid log.
			if err := w2.Append(JobRecord{Job: "job-000002", Event: "accepted"}, true); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			w2.Close()
			_, stats, err = OpenWAL(path, nil)
			if err != nil || stats.Records != 3 || stats.TruncatedBytes != 0 {
				t.Fatalf("final reopen: stats=%+v err=%v", stats, err)
			}
		})
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)}
	var buf []byte
	for _, p := range payloads {
		buf = frameRecord(buf, p)
	}
	rest := buf
	for i, p := range payloads {
		got, next, err := decodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d payload mismatch", i)
		}
		rest = next
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

// FuzzWALDecode drives the record codec with arbitrary bytes: decoding
// must always return a clean error or a record whose re-encoding decodes
// to the same thing — never panic, never over-read.
func FuzzWALDecode(f *testing.F) {
	good := frameRecord(nil, []byte(`{"seq":1,"job":"job-000001","event":"accepted","op":"expansion"}`))
	f.Add(good)
	f.Add(append(good, good...))
	f.Add(good[:5])
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 1<<31))
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			rec, next, err := decodeRecord(rest)
			if err != nil {
				return // torn tail; recovery stops here by design
			}
			if len(next) >= len(rest) {
				t.Fatalf("decode made no progress")
			}
			// Round-trip stability: re-framing the decoded record decodes
			// to an identical record.
			payload, merr := json.Marshal(rec)
			if merr != nil {
				t.Fatalf("re-encode: %v", merr)
			}
			back, _, err := decodeRecord(frameRecord(nil, payload))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if back != rec {
				t.Fatalf("round trip drift: %+v vs %+v", rec, back)
			}
			rest = next
		}
	})
}
