package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// JobRecord is one WAL entry: a single transition in a job's lifecycle.
// The full schema (one JSON object per record, length- and
// CRC-framed) is documented in internal/service/README.md.
//
// Events:
//
//	accepted  — job created; Op/Query/Key identify the computation so a
//	            recovering server can rebuild and resume it
//	progress  — shard-level progress (experiments jobs)
//	cancel    — a client requested cancellation
//	done | failed | cancelled — terminal states
type JobRecord struct {
	// Seq is the monotone record sequence number, assigned by Append.
	Seq uint64 `json:"seq"`
	// Job is the job ID the record belongs to.
	Job string `json:"job"`
	// Event is the transition (see above).
	Event string `json:"event"`

	Op        string `json:"op,omitempty"`
	Query     string `json:"query,omitempty"`
	Key       string `json:"key,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

// castagnoli is the CRC-32C table shared by every record frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameRecord appends one framed record to buf:
//
//	u32 LE payload length | u32 LE CRC-32C(payload) | payload
func frameRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// maxRecordBytes bounds a single WAL record. Job transitions are small;
// a length prefix beyond this is treated as a torn/corrupt tail rather
// than an instruction to allocate gigabytes.
const maxRecordBytes = 1 << 20

// decodeFrame splits one framed record off data, returning the payload
// and the remainder. An incomplete or checksum-failing frame returns an
// error; the caller treats everything from that offset on as a torn
// tail.
func decodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("store: truncated frame header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[:4])
	if n > maxRecordBytes {
		return nil, nil, fmt.Errorf("store: frame length %d exceeds limit", n)
	}
	if len(data) < 8+int(n) {
		return nil, nil, fmt.Errorf("store: truncated frame body (want %d, have %d)", n, len(data)-8)
	}
	payload = data[8 : 8+n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[4:8]); got != want {
		return nil, nil, fmt.Errorf("store: frame checksum mismatch (%08x != %08x)", got, want)
	}
	return payload, data[8+int(n):], nil
}

// decodeRecord parses one framed JobRecord. It is the unit the WAL fuzz
// target drives: any byte stream must come back as a record or a clean
// error.
func decodeRecord(data []byte) (JobRecord, []byte, error) {
	payload, rest, err := decodeFrame(data)
	if err != nil {
		return JobRecord{}, nil, err
	}
	var rec JobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return JobRecord{}, nil, fmt.Errorf("store: frame payload: %w", err)
	}
	return rec, rest, nil
}

// WAL is the append-only job-state log. Every record is framed with a
// length prefix and a CRC-32C; replay stops at the first torn or
// corrupt frame and truncates the file there, so a crash mid-append
// costs at most the record being written.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	seq  uint64
	size int64 // current valid length
}

// ReplayStats reports what OpenWAL found.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes is the length of the torn tail dropped, 0 for a
	// clean log.
	TruncatedBytes int64
}

// OpenWAL opens (creating if needed) the log at path, replays every
// valid record into fn (in append order), truncates any torn tail, and
// returns the WAL positioned for appending. fn may be nil to discard.
func OpenWAL(path string, fn func(JobRecord)) (*WAL, ReplayStats, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("store: open WAL: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, ReplayStats{}, fmt.Errorf("store: read WAL: %w", err)
	}
	w := &WAL{f: f}
	var stats ReplayStats
	rest := data
	for len(rest) > 0 {
		rec, next, err := decodeRecord(rest)
		if err != nil {
			// Torn tail: drop it. Everything before the bad frame is valid.
			stats.TruncatedBytes = int64(len(rest))
			break
		}
		if rec.Seq > w.seq {
			w.seq = rec.Seq
		}
		if fn != nil {
			fn(rec)
		}
		stats.Records++
		rest = next
	}
	w.size = int64(len(data)) - stats.TruncatedBytes
	if stats.TruncatedBytes > 0 {
		if err := f.Truncate(w.size); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("store: seek WAL: %w", err)
	}
	return w, stats, nil
}

// Append assigns the record its sequence number and writes it. When sync
// is true the record is fsynced before Append returns — used for
// accepted and terminal transitions; progress records ride on the next
// sync (losing one costs a stale progress gauge, never correctness).
func (w *WAL) Append(rec JobRecord, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: WAL is closed")
	}
	w.seq++
	rec.Seq = w.seq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode WAL record: %w", err)
	}
	frame := frameRecord(nil, payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append WAL record: %w", err)
	}
	w.size += int64(len(frame))
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: sync WAL: %w", err)
		}
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close syncs and closes the log. Appends after Close fail cleanly.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
