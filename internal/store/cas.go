// Package store provides the durable state layer of the wexpd service:
// a disk-backed content-addressed store for graphs (CAS) and a
// checksummed write-ahead log (WAL) for job state. Both are designed so
// that every byte on disk is a pure function of content identity — a CAS
// file of the digest it is named after, a WAL record of the job
// transition it logs — which is what makes crash recovery testable
// byte for byte.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"wexp/internal/graph"
)

// casSchema versions the index file; graph files are versioned by the
// magic of the pinned v1 binary CSR encoding (graph.MarshalBinary).
const casSchema = "wexp-cas-index/v1"

// IndexEntry is the durable metadata of one stored graph: everything the
// listing endpoint needs without opening the graph file.
type IndexEntry struct {
	N      int      `json:"n"`
	M      int      `json:"m"`
	Labels []string `json:"labels,omitempty"`
}

// indexFile is the on-disk shape of INDEX.json.
type indexFile struct {
	Schema string                `json:"schema"`
	Graphs map[string]IndexEntry `json:"graphs"`
}

// CAS is the content-addressed graph store: one file per graph under
// dir/graphs/<digest>.g in the pinned v1 binary CSR encoding, plus
// INDEX.json carrying per-graph metadata. All writes are atomic
// (temp file + rename), so a crash at any point leaves either the old or
// the new state, never a torn file; reads verify the decoded graph's
// digest against its filename, so silent corruption degrades to a clean
// error.
type CAS struct {
	mu    sync.Mutex
	dir   string
	index map[string]IndexEntry
}

// OpenCAS opens (creating if needed) the CAS rooted at dir and loads the
// index. A missing index means an empty store; an unreadable one is an
// error — refusing to serve is better than silently forgetting graphs.
func OpenCAS(dir string) (*CAS, error) {
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: create CAS dir: %w", err)
	}
	c := &CAS{dir: dir, index: map[string]IndexEntry{}}
	raw, err := os.ReadFile(c.indexPath())
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, fmt.Errorf("store: read index: %w", err)
	}
	var idx indexFile
	if err := json.Unmarshal(raw, &idx); err != nil {
		return nil, fmt.Errorf("store: parse index: %w", err)
	}
	if idx.Schema != casSchema {
		return nil, fmt.Errorf("store: index schema %q, want %q", idx.Schema, casSchema)
	}
	if idx.Graphs != nil {
		c.index = idx.Graphs
	}
	return c, nil
}

func (c *CAS) indexPath() string { return filepath.Join(c.dir, "INDEX.json") }

func (c *CAS) graphPath(digest string) string {
	return filepath.Join(c.dir, "graphs", digest+".g")
}

// writeAtomic writes data to path via a temp file in the same directory
// and an atomic rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// saveIndexLocked rewrites INDEX.json atomically. Caller holds c.mu.
func (c *CAS) saveIndexLocked() error {
	data, err := json.Marshal(indexFile{Schema: casSchema, Graphs: c.index})
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	if err := writeAtomic(c.indexPath(), data); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	return nil
}

// Put stores g under its digest with the given labels (sorted, merged
// with any existing entry's). Storing an already-present digest only
// updates labels; the graph file is written once. Returns whether the
// digest was already present.
func (c *CAS) Put(g *graph.Graph, labels []string) (digest string, existed bool, err error) {
	digest = graph.DigestString(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	entry, existed := c.index[digest]
	if !existed {
		data, merr := g.MarshalBinary()
		if merr != nil {
			return "", false, fmt.Errorf("store: encode graph: %w", merr)
		}
		if err := writeAtomic(c.graphPath(digest), data); err != nil {
			return "", false, fmt.Errorf("store: write graph %s: %w", digest, err)
		}
		entry = IndexEntry{N: g.N(), M: g.M()}
	}
	if merged, changed := mergeLabels(entry.Labels, labels); changed || !existed {
		entry.Labels = merged
		c.index[digest] = entry
		if err := c.saveIndexLocked(); err != nil {
			return "", false, err
		}
	}
	return digest, existed, nil
}

// mergeLabels unions add into have (both treated as sets), returning the
// sorted result and whether anything was added. Empty labels are dropped.
func mergeLabels(have, add []string) ([]string, bool) {
	seen := make(map[string]bool, len(have))
	for _, l := range have {
		seen[l] = true
	}
	changed := false
	out := append([]string(nil), have...)
	for _, l := range add {
		if l != "" && !seen[l] {
			seen[l] = true
			out = append(out, l)
			changed = true
		}
	}
	sort.Strings(out)
	return out, changed
}

// Get loads and decodes the graph for digest, verifying that the decoded
// content re-hashes to the digest it was filed under. A missing digest
// returns (nil, false, nil); a present-but-corrupt file returns an error.
func (c *CAS) Get(digest string) (*graph.Graph, bool, error) {
	c.mu.Lock()
	_, ok := c.index[digest]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	data, err := os.ReadFile(c.graphPath(digest))
	if err != nil {
		return nil, false, fmt.Errorf("store: read graph %s: %w", digest, err)
	}
	g, err := graph.UnmarshalBinary(data)
	if err != nil {
		return nil, false, fmt.Errorf("store: decode graph %s: %w", digest, err)
	}
	if got := graph.DigestString(g); got != digest {
		return nil, false, fmt.Errorf("store: graph %s fails verification (content hashes to %s)", digest, got)
	}
	return g, true, nil
}

// Meta returns the index entry for digest.
func (c *CAS) Meta(digest string) (IndexEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.index[digest]
	return e, ok
}

// List returns every stored digest with its metadata, sorted by digest.
func (c *CAS) List() []ListedGraph {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ListedGraph, 0, len(c.index))
	for d, e := range c.index {
		out = append(out, ListedGraph{Digest: d, IndexEntry: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// ListedGraph pairs a digest with its index metadata.
type ListedGraph struct {
	Digest string
	IndexEntry
}

// Len returns the number of stored graphs.
func (c *CAS) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}
