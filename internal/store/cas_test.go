package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wexp/internal/graph"
)

func buildPath(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v-1, v)
	}
	return b.Build()
}

func TestCASPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCAS(dir)
	if err != nil {
		t.Fatalf("OpenCAS: %v", err)
	}
	g := buildPath(t, 8)
	d, existed, err := c.Put(g, []string{"upload"})
	if err != nil || existed {
		t.Fatalf("Put: existed=%t err=%v", existed, err)
	}
	if d != graph.DigestString(g) {
		t.Fatalf("Put returned digest %s, want %s", d, graph.DigestString(g))
	}
	// Second put dedupes and merges labels.
	if _, existed, err = c.Put(g, []string{"path(8)"}); err != nil || !existed {
		t.Fatalf("second Put: existed=%t err=%v", existed, err)
	}
	back, ok, err := c.Get(d)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%t err=%v", ok, err)
	}
	if graph.DigestString(back) != d {
		t.Fatalf("Get returned a different graph")
	}
	meta, ok := c.Meta(d)
	if !ok || meta.N != 8 || meta.M != 7 {
		t.Fatalf("Meta = %+v ok=%t", meta, ok)
	}
	if want := []string{"path(8)", "upload"}; len(meta.Labels) != 2 || meta.Labels[0] != want[0] || meta.Labels[1] != want[1] {
		t.Fatalf("labels = %v, want %v", meta.Labels, want)
	}
}

// TestCASSurvivesReopen is the durability contract: a fresh CAS over the
// same directory serves the same graphs and metadata.
func TestCASSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCAS(dir)
	var digests []string
	for n := 3; n <= 6; n++ {
		d, _, err := c.Put(buildPath(t, n), []string{"x"})
		if err != nil {
			t.Fatalf("Put n=%d: %v", n, err)
		}
		digests = append(digests, d)
	}
	c2, err := OpenCAS(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if c2.Len() != len(digests) {
		t.Fatalf("reopened Len = %d, want %d", c2.Len(), len(digests))
	}
	for _, d := range digests {
		g, ok, err := c2.Get(d)
		if err != nil || !ok {
			t.Fatalf("reopened Get(%s): ok=%t err=%v", d, ok, err)
		}
		if graph.DigestString(g) != d {
			t.Fatalf("reopened Get(%s) verification drift", d)
		}
	}
	// Listing is deterministic: byte-identical across instances.
	l1, l2 := c.List(), c2.List()
	if len(l1) != len(l2) {
		t.Fatalf("list lengths differ: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].Digest != l2[i].Digest || l1[i].N != l2[i].N {
			t.Fatalf("list entry %d differs: %+v vs %+v", i, l1[i], l2[i])
		}
	}
}

// TestCASCorruptEntry flips a byte in a stored graph file: Get must
// degrade to a clean verification error, not a panic or a wrong graph.
func TestCASCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCAS(dir)
	d, _, err := c.Put(buildPath(t, 10), nil)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, "graphs", d+".g")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read graph file: %v", err)
	}
	data[len(data)-1] ^= 0x01 // corrupt a neighbor entry
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corrupted file: %v", err)
	}
	if _, _, err := c.Get(d); err == nil {
		t.Fatalf("Get on corrupted entry succeeded, want verification error")
	} else if !strings.Contains(err.Error(), "verification") && !strings.Contains(err.Error(), "decode") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	// Deleting the file behind the index is also a clean error.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(d); err == nil {
		t.Fatalf("Get on missing file succeeded, want error")
	}
	// An unknown digest is a miss, not an error.
	if _, ok, err := c.Get(strings.Repeat("0", 64)); ok || err != nil {
		t.Fatalf("unknown digest: ok=%t err=%v, want miss", ok, err)
	}
}

func TestCASBadIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "INDEX.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCAS(dir); err == nil {
		t.Fatalf("OpenCAS over garbage index succeeded, want error")
	}
}
