package gen

import (
	"fmt"

	"wexp/internal/graph"
	"wexp/internal/rng"
)

// RandomRegular returns a random d-regular simple graph on n vertices via
// the pairing (configuration) model with edge-swap repair: d·n half-edges
// are matched by a random perfect matching, and every self-loop or parallel
// edge is then removed by double-edge swaps against uniformly random good
// edges (the standard repair that preserves the degree sequence and leaves
// the distribution asymptotically uniform for bounded d).
func RandomRegular(n, d int, r *rng.RNG) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: d-regular needs 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return graph.NewBuilder(n).Build(), nil
	}
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	r.ShuffleInts(stubs)
	m := len(stubs) / 2
	edges := make([][2]int, m)
	seen := make(map[[2]int]int) // normalized edge -> multiplicity
	norm := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i := 0; i < m; i++ {
		edges[i] = [2]int{stubs[2*i], stubs[2*i+1]}
		seen[norm(edges[i][0], edges[i][1])]++
	}
	isBad := func(e [2]int) bool {
		return e[0] == e[1] || seen[norm(e[0], e[1])] > 1
	}
	// Swap repair: for each bad edge (a,b), pick a random partner edge
	// (c,d) and rewire to (a,c), (b,d) when that strictly reduces badness.
	maxAttempts := 200 * m
	for attempt := 0; attempt < maxAttempts; attempt++ {
		badIdx := -1
		for i, e := range edges {
			if isBad(e) {
				badIdx = i
				break
			}
		}
		if badIdx == -1 {
			b := graph.NewBuilder(n)
			for _, e := range edges {
				b.MustAddEdge(e[0], e[1])
			}
			return b.Build(), nil
		}
		j := r.Intn(m)
		if j == badIdx {
			continue
		}
		a, bb := edges[badIdx][0], edges[badIdx][1]
		c, dd := edges[j][0], edges[j][1]
		// Proposed replacement edges.
		e1, e2 := [2]int{a, c}, [2]int{bb, dd}
		if e1[0] == e1[1] || e2[0] == e2[1] {
			continue
		}
		if seen[norm(e1[0], e1[1])] > 0 || seen[norm(e2[0], e2[1])] > 0 {
			continue
		}
		seen[norm(a, bb)]--
		seen[norm(c, dd)]--
		seen[norm(e1[0], e1[1])]++
		seen[norm(e2[0], e2[1])]++
		edges[badIdx] = e1
		edges[j] = e2
	}
	return nil, fmt.Errorf("gen: edge-swap repair did not converge (n=%d d=%d)", n, d)
}

// ErdosRenyi returns G(n, p): each of the n(n−1)/2 edges present
// independently with probability p.
func ErdosRenyi(n int, p float64, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// RandomSparse returns a connected pseudo-random graph with n vertices
// and approximately m edges in O(n + m) time and memory: a random
// recursive tree (vertex v attaches to a uniform earlier vertex) plus
// m−(n−1) uniform extra edges. Self-loops are resampled; duplicate edges
// collapse at Build, so the final edge count can fall slightly short of m.
// Unlike ErdosRenyi — whose generation is Θ(n²) regardless of density —
// this scales to million-vertex instances, which is what the large-graph
// radio benchmarks need.
func RandomSparse(n, m int, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	for v := 1; v < n; v++ {
		b.MustAddEdge(v, r.Intn(v))
	}
	for i := n - 1; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for u == v {
			v = r.Intn(n)
		}
		b.MustAddEdge(u, v)
	}
	return b.Build()
}

// RandomTree returns a uniform random labelled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i ≥ 1) attaches to a uniform
// earlier vertex. (This is a random recursive tree, not uniform over all
// labelled trees, but the harness only needs "some" arboricity-1 family.)
func RandomTree(n int, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v, r.Intn(v))
	}
	return b.Build()
}

// RandomBipartiteRegular returns a bipartite graph with |S| = s, |N| = n in
// which every S-vertex has degree exactly d, endpoints chosen by repeated
// random perfect assignment: the multiset S×{1..d} is matched to uniformly
// random N-vertices, resampling each vertex's neighbor list until it is
// duplicate-free. N-side degrees are then concentrated around s·d/n.
func RandomBipartiteRegular(s, n, d int, r *rng.RNG) (*graph.Bipartite, error) {
	if d <= 0 || d > n {
		return nil, fmt.Errorf("gen: bipartite regular needs 0 < d <= |N|, got d=%d n=%d", d, n)
	}
	bb := graph.NewBipartiteBuilder(s, n)
	nbr := make([]int, 0, d)
	for u := 0; u < s; u++ {
		nbr = nbr[:0]
		used := make(map[int]struct{}, d)
		for len(nbr) < d {
			v := r.Intn(n)
			if _, dup := used[v]; dup {
				continue
			}
			used[v] = struct{}{}
			nbr = append(nbr, v)
		}
		for _, v := range nbr {
			bb.MustAddEdge(u, v)
		}
	}
	b := bb.Build()
	// The paper's framework forbids isolated vertices; re-wire any isolated
	// N-vertex to a random S-vertex by rebuilding with extra edges.
	var extra [][2]int
	for v := 0; v < n; v++ {
		if b.DegN(v) == 0 {
			extra = append(extra, [2]int{r.Intn(s), v})
		}
	}
	if len(extra) == 0 {
		return b, nil
	}
	bb2 := graph.NewBipartiteBuilder(s, n)
	for u := 0; u < s; u++ {
		for _, v := range b.NeighborsOfS(u) {
			bb2.MustAddEdge(u, int(v))
		}
	}
	for _, e := range extra {
		bb2.MustAddEdge(e[0], e[1])
	}
	return bb2.Build(), nil
}

// RandomBipartite returns a bipartite G(s, n, p) with isolated vertices
// repaired by attaching them to a uniform random partner, preserving the
// paper's no-isolated-vertex assumption.
func RandomBipartite(s, n int, p float64, r *rng.RNG) *graph.Bipartite {
	type edge [2]int
	var edges []edge
	degS := make([]int, s)
	degN := make([]int, n)
	for u := 0; u < s; u++ {
		for v := 0; v < n; v++ {
			if r.Bernoulli(p) {
				edges = append(edges, edge{u, v})
				degS[u]++
				degN[v]++
			}
		}
	}
	for u := 0; u < s; u++ {
		if degS[u] == 0 {
			v := r.Intn(n)
			edges = append(edges, edge{u, v})
			degN[v]++
		}
	}
	for v := 0; v < n; v++ {
		if degN[v] == 0 {
			edges = append(edges, edge{r.Intn(s), v})
		}
	}
	bb := graph.NewBipartiteBuilder(s, n)
	for _, e := range edges {
		bb.MustAddEdge(e[0], e[1])
	}
	return bb.Build()
}
