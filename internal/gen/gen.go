// Package gen provides graph generators for the experiment harness: the
// deterministic families used as expander substrates (Margulis expanders,
// hypercubes), the low-arboricity families of the paper's corollary (grids,
// tori, trees), the motivating C⁺ example from the Introduction, and random
// families (d-regular pairing model, Erdős–Rényi, random bipartite).
//
// The paper's Corollary 4.11 asks for "known constructions of explicit
// expanders (such as Ramanujan graphs)". We substitute Margulis-style
// expanders — explicit, classical, degree 8 on Z_m × Z_m — and random
// regular graphs (expanders w.h.p.); the experiment harness measures the
// expansion of each instance it uses rather than assuming it, so the
// substitution is validated instance by instance.
package gen

import (
	"fmt"

	"wexp/internal/graph"
)

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// Cycle returns the n-cycle C_n (n ≥ 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices. Q_d is
// d-regular with vertex expansion Θ(1/√d) for linear-size sets and serves
// as a structured expander-like family in the harness.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 30 {
		panic("gen: hypercube dimension out of range")
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			w := v ^ (1 << uint(i))
			if w > v {
				b.MustAddEdge(v, w)
			}
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (planar, arboricity ≤ 2) — a
// canonical member of the low-arboricity family for which the paper's
// corollary says wireless expansion matches ordinary expansion up to a
// constant factor.
func Grid(rows, cols int) *graph.Graph {
	if rows <= 0 || cols <= 0 {
		panic("gen: grid needs positive dimensions")
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (4-regular for rows,cols ≥ 3; toroidal
// grid, arboricity ≤ 3).
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs dimensions >= 3")
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.MustAddEdge(id(r, c), id(r, (c+1)%cols))
			b.MustAddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (level 1 = single root). Trees have arboricity 1.
func CompleteBinaryTree(levels int) *graph.Graph {
	if levels <= 0 {
		panic("gen: tree needs levels >= 1")
	}
	n := (1 << uint(levels)) - 1
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v, (v-1)/2)
	}
	return b.Build()
}

// CPlus returns the Introduction's motivating radio-network example: a
// complete graph on n vertices (ids 1..n) plus a source vertex s0 (id 0)
// connected to exactly two clique vertices, x = 1 and y = 2. C⁺ is a good
// ordinary expander but flooding from s0 deadlocks forever after round one,
// because {s0, x, y} has no unique neighbor once all three transmit.
func CPlus(n int) *graph.Graph {
	if n < 3 {
		panic("gen: CPlus needs clique size >= 3")
	}
	b := graph.NewBuilder(n + 1)
	for u := 1; u <= n; u++ {
		for v := u + 1; v <= n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	b.MustAddEdge(0, 1)
	b.MustAddEdge(0, 2)
	return b.Build()
}

// Margulis returns the Margulis–Gabber–Galil expander on Z_m × Z_m: vertex
// (x, y) is adjacent to the images of the four affine maps
// T₁(x,y) = (x+2y, y), T₂ = (x+2y+1, y), T₃ = (x, y+2x), T₄ = (x, y+2x+1)
// and of their inverses, all mod m. The neighbor set is closed under
// inversion, so the graph is 8-regular as a multigraph (merging parallel
// edges and dropping fixed points may lower some degrees) and is a
// classical explicit expander with adjacency spectral gap bounded away
// from zero.
func Margulis(m int) *graph.Graph {
	if m < 2 {
		panic("gen: Margulis needs m >= 2")
	}
	n := m * m
	b := graph.NewBuilder(n)
	id := func(x, y int) int { return ((x%m+m)%m)*m + ((y%m + m) % m) }
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			u := id(x, y)
			for _, v := range []int{
				id(x+2*y, y), id(x-2*y, y), // T₁, T₁⁻¹
				id(x+2*y+1, y), id(x-2*y-1, y), // T₂, T₂⁻¹
				id(x, y+2*x), id(x, y-2*x), // T₃, T₃⁻¹
				id(x, y+2*x+1), id(x, y-2*x-1), // T₄, T₄⁻¹
			} {
				if v != u {
					b.MustAddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// Barbell returns two cliques of size k joined by a single edge — a
// deliberately *bad* expander used as a negative control in tests.
func Barbell(k int) *graph.Graph {
	if k < 2 {
		panic("gen: barbell needs k >= 2")
	}
	b := graph.NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.MustAddEdge(u, v)
			b.MustAddEdge(k+u, k+v)
		}
	}
	b.MustAddEdge(k-1, k)
	return b.Build()
}

// Family identifies a named graph family for CLI and experiment sweeps.
type Family string

// Named graph families understood by FromFamily.
const (
	FamilyComplete  Family = "complete"
	FamilyCycle     Family = "cycle"
	FamilyHypercube Family = "hypercube"
	FamilyGrid      Family = "grid"
	FamilyTorus     Family = "torus"
	FamilyTree      Family = "tree"
	FamilyMargulis  Family = "margulis"
	FamilyCPlus     Family = "cplus"
	FamilyBarbell   Family = "barbell"
)

// FromFamily builds a named family instance with a single size parameter:
// complete/cycle/cplus/barbell take n; hypercube and tree take the
// dimension/levels; grid and torus build size×size; margulis builds m×m.
func FromFamily(f Family, size int) (*graph.Graph, error) {
	switch f {
	case FamilyComplete:
		return Complete(size), nil
	case FamilyCycle:
		return Cycle(size), nil
	case FamilyHypercube:
		return Hypercube(size), nil
	case FamilyGrid:
		return Grid(size, size), nil
	case FamilyTorus:
		return Torus(size, size), nil
	case FamilyTree:
		return CompleteBinaryTree(size), nil
	case FamilyMargulis:
		return Margulis(size), nil
	case FamilyCPlus:
		return CPlus(size), nil
	case FamilyBarbell:
		return Barbell(size), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q", f)
	}
}
