package gen

import (
	"testing"

	"wexp/internal/graph"
)

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("K6: n=%d m=%d", g.N(), g.M())
	}
	if reg, d := g.IsRegular(); !reg || d != 5 {
		t.Fatal("K6 should be 5-regular")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(7)
	if g.N() != 7 || g.M() != 7 {
		t.Fatalf("C7: n=%d m=%d", g.N(), g.M())
	}
	if reg, d := g.IsRegular(); !reg || d != 2 {
		t.Fatal("cycle should be 2-regular")
	}
	if d, conn := g.Diameter(); !conn || d != 3 {
		t.Fatalf("C7 diameter=%d conn=%v", d, conn)
	}
}

func TestCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<3")
		}
	}()
	Cycle(2)
}

func TestPathAndStar(t *testing.T) {
	p := Path(5)
	if p.M() != 4 || p.MaxDegree() != 2 {
		t.Fatal("path wrong")
	}
	s := Star(5)
	if s.M() != 4 || s.MaxDegree() != 4 || s.Degree(0) != 4 {
		t.Fatal("star wrong")
	}
}

func TestHypercube(t *testing.T) {
	for d := 0; d <= 6; d++ {
		g := Hypercube(d)
		if g.N() != 1<<uint(d) {
			t.Fatalf("Q%d: n=%d", d, g.N())
		}
		if reg, deg := g.IsRegular(); !reg || deg != d {
			t.Fatalf("Q%d not %d-regular", d, d)
		}
		if d >= 1 {
			if diam, conn := g.Diameter(); !conn || diam != d {
				t.Fatalf("Q%d diameter=%d", d, diam)
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n=%d", g.N())
	}
	// Edges: 3·3 + 2·4 = 17.
	if g.M() != 17 {
		t.Fatalf("grid m=%d, want 17", g.M())
	}
	if g.MaxDegree() != 4 && g.N() >= 9 {
		// 3x4 grid has interior vertices of degree 4.
		t.Fatalf("grid max degree=%d", g.MaxDegree())
	}
	lo, hi := g.ArboricityEstimate()
	if lo < 1 || hi > 2 {
		t.Fatalf("grid arboricity [%d,%d]", lo, hi)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	if reg, d := g.IsRegular(); !reg || d != 4 {
		t.Fatal("torus should be 4-regular")
	}
	if !g.Connected() {
		t.Fatal("torus disconnected")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(4)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("tree n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
	lo, hi := g.ArboricityEstimate()
	if lo != 1 || hi != 1 {
		t.Fatalf("tree arboricity [%d,%d]", lo, hi)
	}
}

func TestCPlus(t *testing.T) {
	g := CPlus(5)
	if g.N() != 6 {
		t.Fatalf("C+ n=%d", g.N())
	}
	if g.Degree(0) != 2 {
		t.Fatalf("source degree=%d, want 2", g.Degree(0))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Fatal("source wiring wrong")
	}
	// Clique part complete.
	for u := 1; u <= 5; u++ {
		for v := u + 1; v <= 5; v++ {
			if !g.HasEdge(u, v) {
				t.Fatalf("missing clique edge %d-%d", u, v)
			}
		}
	}
}

func TestMargulis(t *testing.T) {
	g := Margulis(6)
	if g.N() != 36 {
		t.Fatalf("margulis n=%d", g.N())
	}
	if !g.Connected() {
		t.Fatal("margulis disconnected")
	}
	if g.MaxDegree() > 8 {
		t.Fatalf("margulis max degree %d > 8", g.MaxDegree())
	}
	// Expander-ish: diameter should be small (O(log n)); for m=6, ≤ 6.
	if d, _ := g.Diameter(); d > 6 {
		t.Fatalf("margulis diameter=%d suspiciously large", d)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(4)
	if g.N() != 8 || g.M() != 13 {
		t.Fatalf("barbell n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
}

func TestFromFamily(t *testing.T) {
	cases := []struct {
		f    Family
		size int
		n    int
	}{
		{FamilyComplete, 5, 5},
		{FamilyCycle, 6, 6},
		{FamilyHypercube, 3, 8},
		{FamilyGrid, 4, 16},
		{FamilyTorus, 4, 16},
		{FamilyTree, 3, 7},
		{FamilyMargulis, 3, 9},
		{FamilyCPlus, 4, 5},
		{FamilyBarbell, 3, 6},
	}
	for _, tc := range cases {
		g, err := FromFamily(tc.f, tc.size)
		if err != nil {
			t.Fatalf("%s: %v", tc.f, err)
		}
		if g.N() != tc.n {
			t.Fatalf("%s(%d): n=%d, want %d", tc.f, tc.size, g.N(), tc.n)
		}
	}
	if _, err := FromFamily("nope", 3); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func degreeHistogram(g *graph.Graph) map[int]int {
	h := map[int]int{}
	for v := 0; v < g.N(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

func TestGridDegreeProfile(t *testing.T) {
	h := degreeHistogram(Grid(4, 4))
	// Corners: 4 of degree 2; edges: 8 of degree 3; interior: 4 of degree 4.
	if h[2] != 4 || h[3] != 8 || h[4] != 4 {
		t.Fatalf("grid degree histogram %v", h)
	}
}
