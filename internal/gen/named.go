package gen

import "wexp/internal/graph"

// Petersen returns the Petersen graph: 3-regular on 10 vertices with
// adjacency eigenvalues {3, 1, −2}; λ2 = 1, a small explicit expander with
// a large spectral gap — a handy exact test case for the Lemma 3.1
// machinery. Vertices 0..4 form the outer cycle, 5..9 the inner pentagram.
func Petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(i, (i+1)%5)     // outer C5
		b.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.MustAddEdge(i, 5+i)         // spokes
	}
	return b.Build()
}

// CompleteBipartiteGraph returns K_{a,b} as a general Graph (side A =
// vertices 0..a−1). K_{m,m} is m-regular with λ2 = 0 and λn = −m — the
// canonical case where second-largest and second-in-magnitude eigenvalues
// differ, exercised by the shifted power iteration.
func CompleteBipartiteGraph(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.MustAddEdge(u, a+v)
		}
	}
	return bl.Build()
}

// Wheel returns the wheel graph W_n: an n-cycle (vertices 1..n) plus a hub
// (vertex 0) adjacent to every cycle vertex. Like C⁺ it mixes a
// high-degree center with low-degree rim vertices.
func Wheel(n int) *graph.Graph {
	if n < 3 {
		panic("gen: wheel needs rim size >= 3")
	}
	b := graph.NewBuilder(n + 1)
	for i := 1; i <= n; i++ {
		b.MustAddEdge(0, i)
		next := i%n + 1
		b.MustAddEdge(i, next)
	}
	return b.Build()
}

// LollipopChain returns a clique of size k attached to a path of length p —
// a classical low-conductance family used as a negative control next to
// Barbell.
func LollipopChain(k, p int) *graph.Graph {
	if k < 2 || p < 1 {
		panic("gen: lollipop needs k >= 2, p >= 1")
	}
	b := graph.NewBuilder(k + p)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.MustAddEdge(u, v)
		}
	}
	// Path vertices k..k+p−1; the first attaches to clique vertex k−1.
	for i := 0; i < p; i++ {
		b.MustAddEdge(k+i-1, k+i)
	}
	return b.Build()
}
