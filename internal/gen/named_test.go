package gen

import (
	"math"
	"testing"

	"wexp/internal/expansion"
	"wexp/internal/rng"
)

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 || g.M() != 15 {
		t.Fatalf("petersen n=%d m=%d", g.N(), g.M())
	}
	if reg, d := g.IsRegular(); !reg || d != 3 {
		t.Fatal("petersen should be 3-regular")
	}
	if diam, conn := g.Diameter(); !conn || diam != 2 {
		t.Fatalf("petersen diameter=%d", diam)
	}
	// λ2 = 1 exactly.
	res, err := expansion.Lambda2Regular(g, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda-1) > 1e-8 {
		t.Fatalf("petersen λ2 = %g, want 1", res.Lambda)
	}
	// Girth 5: no triangles, no 4-cycles — check no common neighbors for
	// adjacent vertices and ≤1 for non-adjacent.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			common := 0
			for _, x := range g.Neighbors(u) {
				for _, y := range g.Neighbors(v) {
					if x == y {
						common++
					}
				}
			}
			if g.HasEdge(u, v) && common != 0 {
				t.Fatalf("adjacent %d,%d share %d neighbors (triangle)", u, v, common)
			}
			if !g.HasEdge(u, v) && common != 1 {
				t.Fatalf("non-adjacent %d,%d share %d neighbors (want exactly 1)", u, v, common)
			}
		}
	}
}

func TestCompleteBipartiteGraph(t *testing.T) {
	g := CompleteBipartiteGraph(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K_{3,4}: n=%d m=%d", g.N(), g.M())
	}
	if color, ok := g.IsBipartition(); !ok || color == nil {
		t.Fatal("K_{3,4} should be bipartite")
	}
	// λ2(K_{m,m}) = 0.
	km := CompleteBipartiteGraph(5, 5)
	res, err := expansion.Lambda2Regular(km, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda) > 1e-8 {
		t.Fatalf("λ2(K_{5,5}) = %g, want 0", res.Lambda)
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(6)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("W6: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 6 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	for v := 1; v <= 6; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("rim degree %d at %d", g.Degree(v), v)
		}
	}
	if d, conn := g.Diameter(); !conn || d != 2 {
		t.Fatalf("wheel diameter %d", d)
	}
}

func TestWheelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Wheel(2)
}

func TestLollipopChain(t *testing.T) {
	g := LollipopChain(5, 4)
	if g.N() != 9 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() != 10+4 {
		t.Fatalf("m=%d, want 14", g.M())
	}
	if !g.Connected() {
		t.Fatal("lollipop disconnected")
	}
	// The tail end is degree 1.
	if g.Degree(8) != 1 {
		t.Fatalf("tail degree %d", g.Degree(8))
	}
	// Low conductance: the clique forms a bottleneck via one edge.
	if d, _ := g.Diameter(); d != 5 {
		t.Fatalf("diameter %d, want 5", d)
	}
}

func TestLollipopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LollipopChain(1, 1)
}
