package gen

import (
	"testing"

	"wexp/internal/rng"
)

func TestRandomRegular(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct{ n, d int }{{10, 3}, {16, 4}, {50, 6}, {8, 0}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if reg, deg := g.IsRegular(); !reg || deg != tc.d {
			t.Fatalf("n=%d: not %d-regular (deg=%d reg=%v)", tc.n, tc.d, deg, reg)
		}
		if g.N() != tc.n {
			t.Fatalf("n mismatch")
		}
	}
}

func TestRandomRegularRejectsOddProduct(t *testing.T) {
	if _, err := RandomRegular(5, 3, rng.New(1)); err == nil {
		t.Fatal("odd n·d accepted")
	}
}

func TestRandomRegularRejectsBadDegree(t *testing.T) {
	if _, err := RandomRegular(5, 5, rng.New(1)); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(5, -1, rng.New(1)); err == nil {
		t.Fatal("negative d accepted")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, err1 := RandomRegular(20, 4, rng.New(99))
	g2, err2 := RandomRegular(20, 4, rng.New(99))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(2)
	g := ErdosRenyi(50, 0.2, r)
	if g.N() != 50 {
		t.Fatal("n wrong")
	}
	// Expected m = 0.2 · C(50,2) = 245; allow wide tolerance.
	if g.M() < 150 || g.M() > 350 {
		t.Fatalf("G(50,0.2) m=%d implausible", g.M())
	}
	if g0 := ErdosRenyi(10, 0, r); g0.M() != 0 {
		t.Fatal("p=0 should be empty")
	}
	if g1 := ErdosRenyi(10, 1, r); g1.M() != 45 {
		t.Fatal("p=1 should be complete")
	}
}

func TestRandomTree(t *testing.T) {
	r := rng.New(3)
	g := RandomTree(30, r)
	if g.N() != 30 || g.M() != 29 {
		t.Fatalf("tree n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	r := rng.New(4)
	b, err := RandomBipartiteRegular(20, 30, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if b.NS() != 20 || b.NN() != 30 {
		t.Fatal("dims wrong")
	}
	for u := 0; u < 20; u++ {
		if b.DegS(u) != 5 {
			t.Fatalf("S-degree %d, want 5", b.DegS(u))
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("isolated vertices remain: %v", err)
	}
}

func TestRandomBipartiteRegularRepair(t *testing.T) {
	// Tiny N side with low d forces repairs occasionally; Validate must
	// still pass. Note after repair S-degrees may exceed d.
	r := rng.New(5)
	for i := 0; i < 20; i++ {
		b, err := RandomBipartiteRegular(3, 12, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
}

func TestRandomBipartiteRegularRejects(t *testing.T) {
	if _, err := RandomBipartiteRegular(5, 3, 4, rng.New(1)); err == nil {
		t.Fatal("d > |N| accepted")
	}
	if _, err := RandomBipartiteRegular(5, 3, 0, rng.New(1)); err == nil {
		t.Fatal("d = 0 accepted")
	}
}

func TestRandomBipartite(t *testing.T) {
	r := rng.New(6)
	b := RandomBipartite(15, 25, 0.15, r)
	if b.NS() != 15 || b.NN() != 25 {
		t.Fatal("dims wrong")
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("isolated after repair: %v", err)
	}
}

func TestRandomBipartiteExtremeP(t *testing.T) {
	r := rng.New(7)
	b := RandomBipartite(4, 4, 0, r)
	if err := b.Validate(); err != nil {
		t.Fatalf("p=0 repair failed: %v", err)
	}
	b = RandomBipartite(4, 4, 1, r)
	if b.M() != 16 {
		t.Fatalf("p=1 m=%d, want 16", b.M())
	}
}
