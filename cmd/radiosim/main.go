// Command radiosim broadcasts a message through a radio network under the
// paper's collision model and compares protocols over Monte-Carlo trials.
//
// Usage:
//
//	radiosim -family cplus -size 32                  all protocols on C⁺
//	radiosim -family torus -size 16 -protocol decay -trials 100 -workers 8
//	radiosim -chain 8 -s 32 -trials 5                Section 5 chain
//	radiosim -family hypercube -size 6 -format json
//
// Trials fan over a deterministic worker pool (results are bit-identical
// at any -workers value); deterministic protocols run a single trial.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.Family, "family", cfg.Family, "graph family (see cmd/wexp)")
	flag.IntVar(&cfg.Size, "size", cfg.Size, "family size parameter")
	flag.StringVar(&cfg.Protocol, "protocol", cfg.Protocol, "flood|prob-flood|decay|round-robin|spokesman|all")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "RNG seed")
	flag.IntVar(&cfg.MaxRounds, "max-rounds", cfg.MaxRounds, "round budget per trial")
	flag.IntVar(&cfg.Chain, "chain", cfg.Chain, "instead of -family: Section 5 chain with this many hops")
	flag.IntVar(&cfg.S, "s", cfg.S, "core parameter for -chain (power of two)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials for randomized protocols")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "trial worker-pool width (0 = GOMAXPROCS; results identical at any width)")
	flag.StringVar(&cfg.Format, "format", cfg.Format, "output format: text|json")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}
