// Command radiosim broadcasts a message through a radio network under the
// paper's collision model and compares protocols over Monte-Carlo trials.
//
// Usage:
//
//	radiosim -family cplus -size 32                  all protocols on C⁺
//	radiosim -family torus -size 16 -protocol decay -trials 100 -workers 8
//	radiosim -chain 8 -s 32 -trials 5                Section 5 chain
//	radiosim -family hypercube -size 6 -format json
//	radiosim -family torus -size 16 -model sinr      physical interference
//	radiosim -graph graph.txt -protocol decay        edge-list file (streamed)
//	cat snap.txt | radiosim -graph - -infer-n        SNAP export on stdin
//
// -model selects the receive rule: unit-disk (default), sinr[:α,β,n0,P],
// fading[:p[,seed]], multi[:m], or jam[:k[,policy]]. Trials fan over a
// deterministic worker pool (results are bit-identical at any -workers
// value); deterministic protocols run a single trial.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its environment abstracted so tests can assert the
// exit status and stderr of failing invocations. Errors never reach
// stdout: a non-zero status comes with diagnostics on stderr only.
func realMain(args []string, stdout, stderr io.Writer) int {
	cfg := defaultConfig()
	fs := flag.NewFlagSet("radiosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.Family, "family", cfg.Family, "graph family (see cmd/wexp)")
	fs.IntVar(&cfg.Size, "size", cfg.Size, "family size parameter")
	fs.StringVar(&cfg.Graph, "graph", cfg.Graph, "stream an edge-list file instead of -family ('-' = stdin)")
	fs.BoolVar(&cfg.OneBased, "one-based", cfg.OneBased, "with -graph: vertex ids are 1-based")
	fs.BoolVar(&cfg.InferN, "infer-n", cfg.InferN, "with -graph: headerless input, n = max id + 1")
	fs.IntVar(&cfg.Source, "source", cfg.Source, "with -graph: broadcast source vertex")
	fs.StringVar(&cfg.Protocol, "protocol", cfg.Protocol, "flood|prob-flood|decay|round-robin|spokesman|all")
	fs.StringVar(&cfg.Model, "model", cfg.Model, "receive rule: unit-disk|sinr|fading|multi|jam (with :params)")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "RNG seed")
	fs.IntVar(&cfg.MaxRounds, "max-rounds", cfg.MaxRounds, "round budget per trial")
	fs.IntVar(&cfg.Chain, "chain", cfg.Chain, "instead of -family: Section 5 chain with this many hops")
	fs.IntVar(&cfg.S, "s", cfg.S, "core parameter for -chain (power of two)")
	fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials for randomized protocols")
	fs.IntVar(&cfg.Workers, "workers", cfg.Workers, "trial worker-pool width (0 = GOMAXPROCS; results identical at any width)")
	fs.StringVar(&cfg.Format, "format", cfg.Format, "output format: text|json")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := run(cfg, stdout); err != nil {
		fmt.Fprintln(stderr, "radiosim:", err)
		return 1
	}
	return 0
}
