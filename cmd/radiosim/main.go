// Command radiosim broadcasts a message through a radio network under the
// paper's collision model and compares protocols.
//
// Usage:
//
//	radiosim -family cplus -size 32                  all protocols on C⁺
//	radiosim -family torus -size 16 -protocol decay
//	radiosim -chain 8 -s 32 -trials 5                Section 5 chain
package main

import (
	"flag"
	"fmt"
	"os"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/stats"
	"wexp/internal/table"
)

func main() {
	var (
		family    = flag.String("family", "cplus", "graph family (see cmd/wexp)")
		size      = flag.Int("size", 16, "family size parameter")
		protocol  = flag.String("protocol", "all", "flood|decay|round-robin|spokesman|all")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		maxRounds = flag.Int("max-rounds", 1_000_000, "round budget")
		chain     = flag.Int("chain", 0, "instead of -family: Section 5 chain with this many hops")
		s         = flag.Int("s", 16, "core parameter for -chain (power of two)")
		trials    = flag.Int("trials", 3, "trials for randomized protocols")
	)
	flag.Parse()
	if err := run(*family, *size, *protocol, *seed, *maxRounds, *chain, *s, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "radiosim:", err)
		os.Exit(1)
	}
}

func run(family string, size int, protocol string, seed uint64, maxRounds, chainHops, s, trials int) error {
	r := rng.New(seed)
	var g *graph.Graph
	source := 0
	name := fmt.Sprintf("%s(%d)", family, size)
	if chainHops > 0 {
		ch, err := badgraph.NewChain(chainHops, s, r)
		if err != nil {
			return err
		}
		g = ch.G
		source = ch.Root
		name = fmt.Sprintf("chain(hops=%d, s=%d)", chainHops, s)
		diam, _ := g.Diameter()
		fmt.Printf("%s: n=%d diameter=%d — paper lower bound scale D·log2(n/D) = %.1f\n",
			name, g.N(), diam, bounds.BroadcastLower(diam, g.N()))
	} else {
		var err error
		g, err = gen.FromFamily(gen.Family(family), size)
		if err != nil {
			return err
		}
		fmt.Printf("%s: n=%d m=%d ∆=%d\n", name, g.N(), g.M(), g.MaxDegree())
	}

	protos := map[string]func() radio.Protocol{
		"flood":       func() radio.Protocol { return radio.Flood{} },
		"round-robin": func() radio.Protocol { return radio.RoundRobin{} },
		"decay":       func() radio.Protocol { return &radio.Decay{R: r.Split()} },
		"spokesman":   func() radio.Protocol { return &radio.Spokesman{R: r.Split(), Trials: 4} },
	}
	order := []string{"flood", "round-robin", "decay", "spokesman"}
	tb := table.New("Broadcast results", "protocol", "rounds (mean)", "completed", "informed", "collisions", "transmissions")
	for _, pname := range order {
		if protocol != "all" && protocol != pname {
			continue
		}
		mk, ok := protos[pname]
		if !ok {
			return fmt.Errorf("unknown protocol %q", protocol)
		}
		reps := 1
		if pname == "decay" || pname == "spokesman" {
			reps = trials
		}
		var rounds []float64
		var last radio.RunResult
		for t := 0; t < reps; t++ {
			res, err := radio.Run(g, source, mk(), maxRounds)
			if err != nil {
				return err
			}
			rounds = append(rounds, float64(res.Rounds))
			last = res
		}
		tb.AddRow(pname, stats.Mean(rounds), last.Completed, last.InformedCount,
			last.Collisions, last.Transmissions)
	}
	fmt.Print(tb.Text())
	return nil
}
