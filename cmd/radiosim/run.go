package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/table"
)

// Config is the full parameter set of one radiosim invocation; main fills
// it from flags, tests construct it directly.
type Config struct {
	Family    string
	Size      int
	Protocol  string
	Model     string // receive-rule spec, see radio.ParseModel
	Seed      uint64
	MaxRounds int
	Chain     int
	S         int
	Trials    int
	Workers   int
	Format    string

	// Graph streams an edge list instead of generating a family: a file
	// path, or "-" for stdin. The input is never buffered — a 10⁷-edge
	// list ingests straight into CSR (see graph.StreamEdgeList) — so piped
	// SNAP exports work at million-vertex scale.
	Graph    string
	OneBased bool // edge-list ids are 1-based
	InferN   bool // headerless edge list: infer n as max id + 1
	Source   int  // broadcast source vertex for -graph instances

	// Stdin is the reader behind "-graph -"; main wires os.Stdin, tests
	// substitute fixtures.
	Stdin io.Reader
}

func defaultConfig() Config {
	return Config{
		Family:    "cplus",
		Size:      16,
		Protocol:  "all",
		Model:     "unit-disk",
		Seed:      1,
		MaxRounds: 1_000_000,
		S:         16,
		Trials:    3,
		Format:    "text",
	}
}

// graphInfo describes the simulated instance in both output formats.
type graphInfo struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	MaxDegree  int     `json:"max_degree"`
	Diameter   int     `json:"diameter,omitempty"`
	LowerBound float64 `json:"broadcast_lower_bound,omitempty"`
	g          *graph.Graph
	source     int
}

// protoReport is the per-protocol summary row.
type protoReport struct {
	Protocol          string  `json:"protocol"`
	Trials            int     `json:"trials"`
	Completed         int     `json:"completed"`
	RoundsMean        float64 `json:"rounds_mean"`
	RoundsMedian      float64 `json:"rounds_median"`
	RoundsMin         float64 `json:"rounds_min"`
	RoundsMax         float64 `json:"rounds_max"`
	CollisionsMean    float64 `json:"collisions_mean"`
	TransmissionsMean float64 `json:"transmissions_mean"`
}

// report is the full JSON document.
type report struct {
	Graph   graphInfo     `json:"graph"`
	Model   string        `json:"model"`
	Seed    uint64        `json:"seed"`
	Results []protoReport `json:"results"`
}

func buildInstance(cfg Config) (graphInfo, error) {
	if cfg.Graph != "" {
		var (
			src  io.Reader
			name string
		)
		if cfg.Graph == "-" {
			if cfg.Stdin == nil {
				cfg.Stdin = os.Stdin
			}
			src, name = cfg.Stdin, "edge-list(stdin)"
		} else {
			f, err := os.Open(cfg.Graph)
			if err != nil {
				return graphInfo{}, err
			}
			defer f.Close()
			src, name = f, fmt.Sprintf("edge-list(%s)", cfg.Graph)
		}
		g, err := graph.StreamEdgeList(src, graph.EdgeListOptions{
			OneBased: cfg.OneBased,
			InferN:   cfg.InferN,
		})
		if err != nil {
			return graphInfo{}, err
		}
		if cfg.Source < 0 || cfg.Source >= g.N() {
			return graphInfo{}, fmt.Errorf("source %d out of range [0,%d)", cfg.Source, g.N())
		}
		return graphInfo{
			Name:      name,
			N:         g.N(),
			M:         g.M(),
			MaxDegree: g.MaxDegree(),
			g:         g,
			source:    cfg.Source,
		}, nil
	}
	if cfg.Chain > 0 {
		ch, err := badgraph.NewChain(cfg.Chain, cfg.S, rng.New(cfg.Seed))
		if err != nil {
			return graphInfo{}, err
		}
		diam, _ := ch.G.Diameter()
		return graphInfo{
			Name:       fmt.Sprintf("chain(hops=%d, s=%d)", cfg.Chain, cfg.S),
			N:          ch.G.N(),
			M:          ch.G.M(),
			MaxDegree:  ch.G.MaxDegree(),
			Diameter:   diam,
			LowerBound: bounds.BroadcastLower(diam, ch.G.N()),
			g:          ch.G,
			source:     ch.Root,
		}, nil
	}
	g, err := gen.FromFamily(gen.Family(cfg.Family), cfg.Size)
	if err != nil {
		return graphInfo{}, err
	}
	return graphInfo{
		Name:      fmt.Sprintf("%s(%d)", cfg.Family, cfg.Size),
		N:         g.N(),
		M:         g.M(),
		MaxDegree: g.MaxDegree(),
		g:         g,
	}, nil
}

// protocolOrder lists the protocols radiosim knows, in output order; the
// bool marks randomized protocols, which run cfg.Trials trials instead of
// one.
var protocolOrder = []struct {
	name       string
	randomized bool
	factory    func(r *rng.RNG) radio.Protocol
}{
	{"flood", false, func(*rng.RNG) radio.Protocol { return radio.Flood{} }},
	{"prob-flood", true, func(r *rng.RNG) radio.Protocol { return &radio.ProbFlood{P: 0.5, R: r} }},
	{"round-robin", false, func(*rng.RNG) radio.Protocol { return radio.RoundRobin{} }},
	{"decay", true, func(r *rng.RNG) radio.Protocol { return &radio.Decay{R: r} }},
	{"spokesman", true, func(r *rng.RNG) radio.Protocol { return &radio.Spokesman{R: r, Trials: 4} }},
}

func run(cfg Config, w io.Writer) error {
	if cfg.Format != "text" && cfg.Format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", cfg.Format)
	}
	if cfg.Trials < 1 {
		return fmt.Errorf("trials must be positive, got %d", cfg.Trials)
	}
	model, err := radio.ParseModel(cfg.Model)
	if err != nil {
		return err
	}
	info, err := buildInstance(cfg)
	if err != nil {
		return err
	}
	rep := report{Graph: info, Model: model.Name(), Seed: cfg.Seed}
	matched := false
	for _, p := range protocolOrder {
		if cfg.Protocol != "all" && cfg.Protocol != p.name {
			continue
		}
		matched = true
		trials := 1
		if p.randomized {
			trials = cfg.Trials
		}
		// Flooding either completes quickly or deadlocks; cap its budget so
		// "DNF" does not cost the full round budget.
		maxRounds := cfg.MaxRounds
		if p.name == "flood" && maxRounds > 2*info.N+100 {
			maxRounds = 2*info.N + 100
		}
		mc, err := radio.MonteCarlo(info.g, info.source, p.factory, trials, radio.Options{
			RunOpts:     runopts.RunOpts{Workers: cfg.Workers, Seed: cfg.Seed},
			MaxRounds:   maxRounds,
			TraceRounds: -1, // summary output only; no per-round quantiles
			Model:       model,
		})
		if err != nil {
			return err
		}
		collMean := float64(mc.TotalCollisions) / float64(trials)
		txMean := float64(mc.TotalTransmissions) / float64(trials)
		rep.Results = append(rep.Results, protoReport{
			Protocol:          p.name,
			Trials:            trials,
			Completed:         mc.Completed,
			RoundsMean:        mc.Rounds.Mean,
			RoundsMedian:      mc.Rounds.Median,
			RoundsMin:         mc.Rounds.Min,
			RoundsMax:         mc.Rounds.Max,
			CollisionsMean:    collMean,
			TransmissionsMean: txMean,
		})
	}
	if !matched {
		return fmt.Errorf("unknown protocol %q", cfg.Protocol)
	}
	if cfg.Format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "%s: n=%d m=%d ∆=%d model=%s\n", info.Name, info.N, info.M, info.MaxDegree, rep.Model)
	if info.Diameter > 0 {
		fmt.Fprintf(w, "diameter=%d — paper lower bound scale D·log2(n/D) = %.1f\n",
			info.Diameter, info.LowerBound)
	}
	tb := table.New("Broadcast results (Monte-Carlo over trials)",
		"protocol", "trials", "completed", "rounds (mean)", "rounds (median)",
		"collisions/trial", "transmissions/trial")
	for _, r := range rep.Results {
		tb.AddRow(r.Protocol, r.Trials, fmt.Sprintf("%d/%d", r.Completed, r.Trials),
			r.RoundsMean, r.RoundsMedian, r.CollisionsMean, r.TransmissionsMean)
	}
	_, err = io.WriteString(w, tb.Text())
	return err
}
