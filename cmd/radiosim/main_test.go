package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

// golden runs radiosim with the given config and compares the output to
// the named testdata file (regenerate with UPDATE_GOLDEN=1 go test).
func golden(t *testing.T, cfg Config, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestRunJSONGoldenCPlus(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Format = 8, "json"
	golden(t, cfg, "cplus8.json")
}

func TestRunJSONGoldenChain(t *testing.T) {
	cfg := defaultConfig()
	cfg.Chain, cfg.S, cfg.Trials, cfg.Seed, cfg.Format = 2, 8, 2, 4, "json"
	golden(t, cfg, "chain2x8.json")
}

func TestRunJSONShape(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Format, cfg.Protocol, cfg.Trials = 8, "json", "decay", 4
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Graph.N != 9 || rep.Graph.M != 30 {
		t.Fatalf("graph header wrong: %+v", rep.Graph)
	}
	if len(rep.Results) != 1 || rep.Results[0].Protocol != "decay" {
		t.Fatalf("results: %+v", rep.Results)
	}
	if rep.Results[0].Trials != 4 || rep.Results[0].Completed != 4 {
		t.Fatalf("decay on C⁺ should complete all 4 trials: %+v", rep.Results[0])
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	base := defaultConfig()
	base.Size, base.Format, base.Trials = 12, "json", 8
	var out1, out8 bytes.Buffer
	cfg1, cfg8 := base, base
	cfg1.Workers, cfg8.Workers = 1, 8
	if err := run(cfg1, &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg8, &out8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Fatal("radiosim output depends on -workers")
	}
}

func TestRunTextFormat(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size = 8
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cplus(8): n=9 m=30", "flood", "decay", "spokesman", "rounds (mean)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONGoldenSINR(t *testing.T) {
	cfg := defaultConfig()
	cfg.Family, cfg.Size, cfg.Model, cfg.Protocol, cfg.Trials, cfg.Format =
		"torus", 4, "sinr", "decay", 4, "json"
	golden(t, cfg, "torus4_sinr.json")
}

func TestRunJSONGoldenFading(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Model, cfg.Protocol, cfg.Trials, cfg.Format =
		8, "fading:0.25", "decay", 4, "json"
	golden(t, cfg, "cplus8_fading.json")
}

func TestRunUnitDiskModelMatchesDefault(t *testing.T) {
	// -model unit-disk must reproduce the default output byte for byte:
	// the model subsystem does not perturb protocol RNG streams.
	cfg := defaultConfig()
	cfg.Size, cfg.Format = 8, "json"
	var a, b bytes.Buffer
	if err := run(cfg, &a); err != nil {
		t.Fatal(err)
	}
	cfg.Model = "unit-disk"
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("explicit -model unit-disk differs from default output")
	}
}

// TestRunGraphStdin streams an edge list through the -graph - path and
// checks the instance header and completion; the input is consumed as a
// stream (the reader is a one-shot strings.Reader, never rewound).
func TestRunGraphStdin(t *testing.T) {
	cfg := defaultConfig()
	cfg.Graph, cfg.Protocol, cfg.Trials, cfg.Format = "-", "decay", 3, "json"
	cfg.Stdin = strings.NewReader("n 6\n0 1\n1 2\n2 3\n3 4\n4 5\n0 3\n")
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Graph.Name != "edge-list(stdin)" || rep.Graph.N != 6 || rep.Graph.M != 6 {
		t.Fatalf("graph header wrong: %+v", rep.Graph)
	}
	if rep.Results[0].Completed != 3 {
		t.Fatalf("decay should complete all trials on a 6-path: %+v", rep.Results[0])
	}
}

// TestRunGraphFile reads the same instance from a file, with SNAP-style
// headerless one-based input and a non-zero source.
func TestRunGraphFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("# directed export\n1 2\n2 1\n2 3\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	cfg.Graph, cfg.OneBased, cfg.InferN, cfg.Source = path, true, true, 2
	cfg.Protocol, cfg.Trials, cfg.Format = "decay", 2, "json"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Graph.N != 4 || rep.Graph.M != 3 {
		t.Fatalf("graph header wrong: %+v", rep.Graph)
	}
}

// TestRunGraphErrors pins the failure modes of the -graph path: malformed
// input (with line/offset diagnostics), missing file, bad source.
func TestRunGraphErrors(t *testing.T) {
	cfg := defaultConfig()
	cfg.Graph = "-"
	cfg.Stdin = strings.NewReader("n 3\n0 1x\n")
	err := run(cfg, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed edge list: err = %v, want line-anchored parse error", err)
	}
	cfg.Stdin = strings.NewReader("n 3\n0 1\n")
	cfg.Source = 7
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	cfg = defaultConfig()
	cfg.Graph = filepath.Join(t.TempDir(), "missing.txt")
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("missing graph file accepted")
	}
}

// TestMainExitStatus asserts the CLI contract on failure: non-zero status,
// diagnostics on stderr only, nothing on stdout — with the stderr shape
// pinned by a golden file.
func TestMainExitStatus(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"-protocol", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("error output leaked to stdout: %q", stdout.String())
	}
	path := filepath.Join("testdata", "errpath.txt")
	if update {
		if err := os.WriteFile(path, stderr.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stderr.Bytes(), want) {
		t.Fatalf("stderr differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, stderr.Bytes(), want)
	}

	// Flag-parse failures exit 2 (flag prints its own usage to stderr).
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("flag error exit code = %d, want 2", code)
	}
	if stdout.Len() != 0 || stderr.Len() == 0 {
		t.Fatal("flag error should report on stderr only")
	}

	// The success path exits 0 with output on stdout.
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"-size", "8", "-protocol", "flood"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if stdout.Len() == 0 || stderr.Len() != 0 {
		t.Fatal("success should write stdout only")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := defaultConfig()
	cfg.Protocol = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = defaultConfig()
	cfg.Format = "yaml"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	cfg = defaultConfig()
	cfg.Family = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown family accepted")
	}
	cfg = defaultConfig()
	cfg.Trials = 0
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("zero trials accepted")
	}
	cfg = defaultConfig()
	cfg.Model = "warp-drive"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
