package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

// golden runs radiosim with the given config and compares the output to
// the named testdata file (regenerate with UPDATE_GOLDEN=1 go test).
func golden(t *testing.T, cfg Config, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestRunJSONGoldenCPlus(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Format = 8, "json"
	golden(t, cfg, "cplus8.json")
}

func TestRunJSONGoldenChain(t *testing.T) {
	cfg := defaultConfig()
	cfg.Chain, cfg.S, cfg.Trials, cfg.Seed, cfg.Format = 2, 8, 2, 4, "json"
	golden(t, cfg, "chain2x8.json")
}

func TestRunJSONShape(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Format, cfg.Protocol, cfg.Trials = 8, "json", "decay", 4
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Graph.N != 9 || rep.Graph.M != 30 {
		t.Fatalf("graph header wrong: %+v", rep.Graph)
	}
	if len(rep.Results) != 1 || rep.Results[0].Protocol != "decay" {
		t.Fatalf("results: %+v", rep.Results)
	}
	if rep.Results[0].Trials != 4 || rep.Results[0].Completed != 4 {
		t.Fatalf("decay on C⁺ should complete all 4 trials: %+v", rep.Results[0])
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	base := defaultConfig()
	base.Size, base.Format, base.Trials = 12, "json", 8
	var out1, out8 bytes.Buffer
	cfg1, cfg8 := base, base
	cfg1.Workers, cfg8.Workers = 1, 8
	if err := run(cfg1, &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg8, &out8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Fatal("radiosim output depends on -workers")
	}
}

func TestRunTextFormat(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size = 8
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cplus(8): n=9 m=30", "flood", "decay", "spokesman", "rounds (mean)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cfg := defaultConfig()
	cfg.Protocol = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = defaultConfig()
	cfg.Format = "yaml"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	cfg = defaultConfig()
	cfg.Family = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown family accepted")
	}
	cfg = defaultConfig()
	cfg.Trials = 0
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("zero trials accepted")
	}
}
