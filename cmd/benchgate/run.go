package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Config is the full parameter set of one benchgate invocation; main fills
// it from flags and positional args, tests construct it directly.
type Config struct {
	// Tol is the allowed fractional ns/op regression: a fresh record fails
	// when fresh > baseline·(1+Tol). Improvements never fail (they warn
	// when they exceed the same tolerance, signalling a stale baseline).
	Tol float64
	// Strict also fails the gate when a baseline record has no fresh
	// counterpart (a benchmark point silently disappeared).
	Strict bool
	// Pairs lists the (baseline, fresh) file pairs to compare.
	Pairs []Pair
}

// Pair is one baseline/fresh comparison.
type Pair struct {
	Baseline string
	Fresh    string
}

func defaultConfig() Config {
	return Config{Tol: 0.25}
}

// benchFile is the shared shape of the BENCH_*.json perf records: a schema
// string plus a list of flat records, each carrying an ns_per_op timing
// and arbitrary identity fields.
type benchFile struct {
	Schema  string                       `json:"schema"`
	Records []map[string]json.RawMessage `json:"records"`
}

// timingFields are measurement outputs, excluded from a record's identity
// key so the key is stable run to run. allocs_per_op is among them: it is
// gated like ns_per_op (with an absolute slack for pool jitter), not used
// to match records.
//
// Deliberately NOT here: the randomized-tier columns `trials` and
// `failure_prob` of wexp-bench/expansion-v1. Both are deterministic
// functions of the instance and the fixed bench seed (per-trial pre-split
// RNG streams), so they are identity fields — a drift in the randomized
// schedule or the failure accounting surfaces as a MISSING/NEW record pair
// instead of hiding inside the timing tolerance.
var timingFields = map[string]bool{
	"ns_per_op":        true,
	"sets_per_sec":     true,
	"speedup":          true,
	"requests_per_sec": true,
	"allocs_per_op":    true,
	// wexp-bench/load-v1 latency measurements (cmd/wexpload).
	"p50_ns": true,
	"p90_ns": true,
	"p99_ns": true,
	"max_ns": true,
	"errors": true,
	// wexp-bench/ingest-v1 (BENCH_ingest.json) measurements. bytes_per_edge
	// is gated like allocs_per_op — a regression means the streaming
	// ingester started buffering edges again.
	"edges_per_sec":  true,
	"bytes_per_edge": true,
}

// allocSlack is the absolute allocs/op headroom granted on top of the
// relative tolerance: sync.Pool arenas are emptied by GC at arbitrary
// points, so identical code can differ by a few pool refills per op.
const allocSlack = 16.0

// bytesPerEdgeSlack is the absolute bytes/edge headroom for the ingest
// record: slab rounding and GC timing shift the TotalAlloc delta by a few
// bytes per edge on identical code.
const bytesPerEdgeSlack = 8.0

// measurement is one record's gated outputs.
type measurement struct {
	ns           float64
	allocs       float64
	hasAllocs    bool
	bytesPerEdge float64
	hasBPE       bool
}

// recordKey returns the canonical identity of a record: its non-timing
// fields marshalled with sorted keys.
func recordKey(rec map[string]json.RawMessage) (string, error) {
	keys := make([]string, 0, len(rec))
	for k := range rec {
		if !timingFields[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := map[string]json.RawMessage{}
	for _, k := range keys {
		out[k] = rec[k]
	}
	data, err := json.Marshal(out) // map marshal sorts keys
	return string(data), err
}

// loadBench reads one perf-record file into key → measurements.
func loadBench(path string) (schema string, byKey map[string]measurement, order []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return "", nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byKey = map[string]measurement{}
	for _, rec := range f.Records {
		raw, ok := rec["ns_per_op"]
		if !ok {
			continue
		}
		var m measurement
		if err := json.Unmarshal(raw, &m.ns); err != nil {
			return "", nil, nil, fmt.Errorf("%s: bad ns_per_op: %w", path, err)
		}
		if raw, ok := rec["allocs_per_op"]; ok {
			if err := json.Unmarshal(raw, &m.allocs); err != nil {
				return "", nil, nil, fmt.Errorf("%s: bad allocs_per_op: %w", path, err)
			}
			m.hasAllocs = true
		}
		if raw, ok := rec["bytes_per_edge"]; ok {
			if err := json.Unmarshal(raw, &m.bytesPerEdge); err != nil {
				return "", nil, nil, fmt.Errorf("%s: bad bytes_per_edge: %w", path, err)
			}
			m.hasBPE = true
		}
		key, err := recordKey(rec)
		if err != nil {
			return "", nil, nil, err
		}
		if _, dup := byKey[key]; dup {
			return "", nil, nil, fmt.Errorf("%s: duplicate record %s", path, key)
		}
		byKey[key] = m
		order = append(order, key)
	}
	return f.Schema, byKey, order, nil
}

// run compares every (baseline, fresh) pair and reports per-record
// verdicts to w. It returns an error when any record regresses beyond
// cfg.Tol (or, with cfg.Strict, when a baseline record disappeared).
func run(cfg Config, w io.Writer) error {
	if cfg.Tol <= 0 {
		return fmt.Errorf("tolerance must be positive, got %g", cfg.Tol)
	}
	if len(cfg.Pairs) == 0 {
		return fmt.Errorf("no baseline/fresh pairs given")
	}
	regressions, missing := 0, 0
	for _, pair := range cfg.Pairs {
		baseSchema, base, baseOrder, err := loadBench(pair.Baseline)
		if err != nil {
			return err
		}
		freshSchema, fresh, freshOrder, err := loadBench(pair.Fresh)
		if err != nil {
			return err
		}
		if baseSchema != freshSchema {
			return fmt.Errorf("schema mismatch: %s has %q, %s has %q",
				pair.Baseline, baseSchema, pair.Fresh, freshSchema)
		}
		fmt.Fprintf(w, "== %s vs %s (%s, tol ±%.0f%%) ==\n",
			pair.Fresh, pair.Baseline, baseSchema, cfg.Tol*100)
		for _, key := range baseOrder {
			baseM := base[key]
			freshM, ok := fresh[key]
			if !ok {
				missing++
				fmt.Fprintf(w, "MISSING  %s (no fresh record)\n", key)
				continue
			}
			baseNs, freshNs := baseM.ns, freshM.ns
			ratio := freshNs / baseNs
			switch {
			case freshNs > baseNs*(1+cfg.Tol):
				regressions++
				fmt.Fprintf(w, "FAIL     %s: %.4g → %.4g ns/op (%.2fx, beyond +%.0f%%)\n",
					key, baseNs, freshNs, ratio, cfg.Tol*100)
			case freshNs < baseNs/(1+cfg.Tol):
				fmt.Fprintf(w, "IMPROVED %s: %.4g → %.4g ns/op (%.2fx) — baseline looks stale\n",
					key, baseNs, freshNs, ratio)
			default:
				fmt.Fprintf(w, "ok       %s: %.4g → %.4g ns/op (%.2fx)\n",
					key, baseNs, freshNs, ratio)
			}
			// Allocation gate: relative tolerance plus absolute pool slack,
			// so a near-zero baseline doesn't fail on GC jitter but a real
			// per-op allocation regression does.
			if baseM.hasAllocs && freshM.hasAllocs &&
				freshM.allocs > baseM.allocs*(1+cfg.Tol)+allocSlack {
				regressions++
				fmt.Fprintf(w, "FAIL     %s: %.4g → %.4g allocs/op (beyond +%.0f%% + %g)\n",
					key, baseM.allocs, freshM.allocs, cfg.Tol*100, allocSlack)
			}
			// Ingest memory gate: same shape as the allocation gate, over
			// heap bytes per parsed edge.
			if baseM.hasBPE && freshM.hasBPE &&
				freshM.bytesPerEdge > baseM.bytesPerEdge*(1+cfg.Tol)+bytesPerEdgeSlack {
				regressions++
				fmt.Fprintf(w, "FAIL     %s: %.4g → %.4g bytes/edge (beyond +%.0f%% + %g)\n",
					key, baseM.bytesPerEdge, freshM.bytesPerEdge, cfg.Tol*100, bytesPerEdgeSlack)
			}
		}
		for _, key := range freshOrder {
			if _, ok := base[key]; !ok {
				fmt.Fprintf(w, "NEW      %s (no baseline; add it by committing the fresh file)\n", key)
			}
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d record(s) regressed beyond ±%.0f%%", regressions, cfg.Tol*100)
	}
	if missing > 0 && cfg.Strict {
		return fmt.Errorf("%d baseline record(s) have no fresh counterpart", missing)
	}
	return nil
}
