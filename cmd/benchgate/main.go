// Command benchgate compares freshly emitted perf records (BENCH_*.json,
// written by the benchmarks) against committed baselines and fails when
// any record's ns/op regressed beyond the tolerance — so perf regressions
// fail PRs instead of silently rewriting the JSON.
//
// Usage:
//
//	benchgate [-tol 0.25] [-strict] baseline fresh [baseline fresh ...]
//
// Records are matched by their identity fields (everything except the
// timing outputs ns_per_op / sets_per_sec / speedup), so the tool works
// for every BENCH_*.json schema. Improvements beyond the tolerance only
// warn ("baseline looks stale"); refresh baselines by running
// `make bench-baseline` (steady-state timings) and committing the
// rewritten files.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	cfg := defaultConfig()
	flag.Float64Var(&cfg.Tol, "tol", cfg.Tol, "allowed fractional ns/op regression (0.25 = +25%)")
	flag.BoolVar(&cfg.Strict, "strict", cfg.Strict, "also fail when a baseline record has no fresh counterpart")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-tol f] [-strict] baseline fresh [baseline fresh ...]")
		os.Exit(2)
	}
	for i := 0; i < len(args); i += 2 {
		cfg.Pairs = append(cfg.Pairs, Pair{Baseline: args[i], Fresh: args[i+1]})
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}
