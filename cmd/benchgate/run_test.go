package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseJSON = `{
  "schema": "wexp-bench/expansion-v1",
  "records": [
    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000, "sets_per_sec": 1},
    {"solver": "unique", "n": 20, "alpha": 0.5, "workers": 0, "ns_per_op": 2000}
  ]
}`

func gate(t *testing.T, tol float64, strict bool, base, fresh string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(Config{Tol: tol, Strict: strict, Pairs: []Pair{{base, fresh}}}, &buf)
	return buf.String(), err
}

func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1200, "sets_per_sec": 2},
	    {"solver": "unique", "n": 20, "alpha": 0.5, "workers": 0, "ns_per_op": 1900}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, fresh)
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out)
	}
	if strings.Count(out, "ok ") != 2 {
		t.Fatalf("expected 2 ok records:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1300},
	    {"solver": "unique", "n": 20, "alpha": 0.5, "workers": 0, "ns_per_op": 2000}
	  ]
	}`)
	out, err := gate(t, 0.25, false, base, fresh)
	if err == nil || !strings.Contains(out, "FAIL") {
		t.Fatalf("regression not caught: err=%v\n%s", err, out)
	}
}

func TestGateImprovementOnlyWarns(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 100},
	    {"solver": "unique", "n": 20, "alpha": 0.5, "workers": 0, "ns_per_op": 2000}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, fresh)
	if err != nil {
		t.Fatalf("improvement failed the gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "IMPROVED") || !strings.Contains(out, "stale") {
		t.Fatalf("stale-baseline warning missing:\n%s", out)
	}
}

func TestGateMissingRecord(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000}
	  ]
	}`)
	if out, err := gate(t, 0.25, false, base, fresh); err != nil {
		t.Fatalf("lenient mode failed on missing record: %v\n%s", err, out)
	}
	out, err := gate(t, 0.25, true, base, fresh)
	if err == nil || !strings.Contains(out, "MISSING") {
		t.Fatalf("strict mode did not flag missing record: err=%v\n%s", err, out)
	}
}

// TestGateRandomizedIdentityFields: the randomized-tier columns `trials`
// and `failure_prob` are identity fields, not timings — a fresh record
// whose trial count or failure accounting drifted must stop matching its
// baseline (MISSING + NEW) rather than slip through the ns/op tolerance,
// while a timing-only change on an unchanged certificate still gates
// normally.
func TestGateRandomizedIdentityFields(t *testing.T) {
	const randBase = `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary-randomized-frontier", "n": 120, "alpha": 0.05, "workers": 0, "trials": 11640, "failure_prob": 1.2e-10, "ns_per_op": 1000}
	  ]
	}`
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", randBase)

	// Same certificate, slower timing beyond tolerance: a plain FAIL.
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary-randomized-frontier", "n": 120, "alpha": 0.05, "workers": 0, "trials": 11640, "failure_prob": 1.2e-10, "ns_per_op": 2000}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, fresh)
	if err == nil || !strings.Contains(out, "FAIL") {
		t.Fatalf("timing regression on a randomized row not caught: err=%v\n%s", err, out)
	}

	// Drifted trial count: the record no longer matches its baseline.
	drift := writeBench(t, dir, "drift.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary-randomized-frontier", "n": 120, "alpha": 0.05, "workers": 0, "trials": 11641, "failure_prob": 1.2e-10, "ns_per_op": 1000}
	  ]
	}`)
	out, err = gate(t, 0.25, true, base, drift)
	if err == nil {
		t.Fatalf("trial-count drift slipped through the gate:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") || !strings.Contains(out, "NEW") {
		t.Fatalf("drifted randomized record should be MISSING+NEW:\n%s", out)
	}

	// Drifted failure accounting: same.
	failDrift := writeBench(t, dir, "faildrift.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary-randomized-frontier", "n": 120, "alpha": 0.05, "workers": 0, "trials": 11640, "failure_prob": 2.4e-10, "ns_per_op": 1000}
	  ]
	}`)
	out, err = gate(t, 0.25, true, base, failDrift)
	if err == nil || !strings.Contains(out, "MISSING") {
		t.Fatalf("failure-prob drift slipped through the gate: err=%v\n%s", err, out)
	}
}

func TestGateNewRecordReported(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000},
	    {"solver": "unique", "n": 20, "alpha": 0.5, "workers": 0, "ns_per_op": 2000},
	    {"solver": "wireless", "n": 16, "alpha": 0.25, "workers": 0, "ns_per_op": 500}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NEW") {
		t.Fatalf("new record not reported:\n%s", out)
	}
}

// TestGateAllocations: allocs_per_op is a gated measurement, not part of
// the identity key — records with changed alloc counts still match, pass
// within tolerance + slack, and fail beyond it.
func TestGateAllocations(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000, "allocs_per_op": 20}
	  ]
	}`)
	within := writeBench(t, dir, "within.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000, "allocs_per_op": 36}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, within)
	if err != nil {
		t.Fatalf("alloc jitter within tolerance+slack failed: %v\n%s", err, out)
	}
	beyond := writeBench(t, dir, "beyond.json", `{
	  "schema": "wexp-bench/expansion-v1",
	  "records": [
	    {"solver": "ordinary", "n": 16, "alpha": 0.5, "workers": 0, "ns_per_op": 1000, "allocs_per_op": 500}
	  ]
	}`)
	out, err = gate(t, 0.25, true, base, beyond)
	if err == nil || !strings.Contains(out, "allocs/op") {
		t.Fatalf("alloc regression not caught: err=%v\n%s", err, out)
	}
}

// TestGateBytesPerEdge: the ingest record's bytes_per_edge column is a
// gated measurement like allocs_per_op — edges_per_sec stays a timing
// field (matching survives throughput changes), jitter within
// tolerance+slack passes, and a real buffering regression fails.
func TestGateBytesPerEdge(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", `{
	  "schema": "wexp-bench/ingest-v1",
	  "records": [
	    {"mode": "stream", "n": 20000, "m": 199999, "input_bytes": 2000000, "ns_per_op": 1000, "edges_per_sec": 1e7, "bytes_per_edge": 20}
	  ]
	}`)
	within := writeBench(t, dir, "within.json", `{
	  "schema": "wexp-bench/ingest-v1",
	  "records": [
	    {"mode": "stream", "n": 20000, "m": 199999, "input_bytes": 2000000, "ns_per_op": 1000, "edges_per_sec": 5e6, "bytes_per_edge": 32}
	  ]
	}`)
	out, err := gate(t, 0.25, true, base, within)
	if err != nil {
		t.Fatalf("bytes/edge jitter within tolerance+slack failed: %v\n%s", err, out)
	}
	beyond := writeBench(t, dir, "beyond.json", `{
	  "schema": "wexp-bench/ingest-v1",
	  "records": [
	    {"mode": "stream", "n": 20000, "m": 199999, "input_bytes": 2000000, "ns_per_op": 1000, "edges_per_sec": 1e7, "bytes_per_edge": 96}
	  ]
	}`)
	out, err = gate(t, 0.25, true, base, beyond)
	if err == nil || !strings.Contains(out, "bytes/edge") {
		t.Fatalf("bytes/edge regression not caught: err=%v\n%s", err, out)
	}
}

func TestGateSchemaMismatchAndBadInput(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	other := writeBench(t, dir, "other.json", `{"schema": "wexp-bench/radio-v1", "records": []}`)
	if _, err := gate(t, 0.25, false, base, other); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if _, err := gate(t, 0.25, false, base, filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := gate(t, -1, false, base, base); err == nil {
		t.Fatal("non-positive tolerance accepted")
	}
	if err := run(Config{Tol: 0.25}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty pair list accepted")
	}
}

// TestGateAgainstCommittedBaselines compares the repo's committed perf
// records against themselves — the self-comparison every CI run starts
// from must be green.
func TestGateAgainstCommittedBaselines(t *testing.T) {
	var buf bytes.Buffer
	err := run(Config{Tol: 0.25, Strict: true, Pairs: []Pair{
		{"../../BENCH_expansion.json", "../../BENCH_expansion.json"},
		{"../../BENCH_radio.json", "../../BENCH_radio.json"},
		{"../../BENCH_ingest.json", "../../BENCH_ingest.json"},
	}}, &buf)
	if err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, buf.String())
	}
}
