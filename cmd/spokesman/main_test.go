package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

func golden(t *testing.T, cfg Config, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestRunJSONGoldenCore(t *testing.T) {
	cfg := defaultConfig()
	cfg.Core, cfg.Format = 16, "json"
	golden(t, cfg, "core16.json")
}

func TestRunJSONGoldenGBad(t *testing.T) {
	cfg := defaultConfig()
	cfg.GBad, cfg.Format = "16,8,5", "json"
	golden(t, cfg, "gbad16_8_5.json")
}

func TestRunTextGoldenRandom(t *testing.T) {
	cfg := defaultConfig()
	cfg.Random, cfg.Seed = "12x18", 7
	golden(t, cfg, "random12x18.txt")
}

func TestRunJSONShape(t *testing.T) {
	cfg := defaultConfig()
	cfg.Core, cfg.Format = 16, "json"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep spokesmanReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.NS != 16 || len(rep.Results) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	// The exhaustive optimum runs at |S| = 16 and must dominate every
	// heuristic row.
	best := 0
	hasExact := false
	for _, row := range rep.Results {
		if row.Unique > best {
			best = row.Unique
		}
		if strings.Contains(row.Algorithm, "exhaustive") {
			hasExact = true
			if row.Unique < best {
				t.Fatalf("exhaustive (%d) beaten by a heuristic (%d)", row.Unique, best)
			}
		}
	}
	if !hasExact {
		t.Fatal("exhaustive row missing at |S| = 16")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := defaultConfig()
	cfg.Random, cfg.Seed, cfg.Format = "15x25", 42, "json"
	var a, b bytes.Buffer
	if err := run(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different output")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	cfg := defaultConfig()
	cfg.Format = "yaml"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for bad format")
	}
}

func TestRunRejectsBadInstanceSpecs(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.GBad = "bogus" },
		func(c *Config) { c.Random = "bogus" },
		func(c *Config) { c.Load = filepath.Join(t.TempDir(), "missing.txt") },
	} {
		cfg := defaultConfig()
		mutate(&cfg)
		if err := run(cfg, &bytes.Buffer{}); err == nil {
			t.Fatalf("expected error for config %+v", cfg)
		}
	}
}
