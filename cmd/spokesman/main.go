// Command spokesman solves the spokesman election problem (Section 4.2.1)
// on a bipartite instance: given G = (S, N, E), find S' ⊆ S maximizing the
// number of N-vertices with exactly one neighbor in S'.
//
// Usage:
//
//	spokesman -load instance.txt            (WriteBipartiteEdgeList format)
//	spokesman -random 30x40 -p 0.1 -seed 7
//	spokesman -core 32                      (the Lemma 4.4 core graph)
//	spokesman -gbad 16,8,5                  (the Lemma 3.3 construction)
package main

import (
	"flag"
	"fmt"
	"os"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

func main() {
	var (
		load   = flag.String("load", "", "bipartite edge-list file")
		random = flag.String("random", "", "random instance SxN, e.g. 30x40")
		p      = flag.Float64("p", 0.1, "edge probability for -random")
		core   = flag.Int("core", 0, "core graph parameter s (power of two)")
		gbad   = flag.String("gbad", "", "Gbad parameters s,∆,β e.g. 16,8,5")
		seed   = flag.Uint64("seed", 1, "RNG seed")
		trials = flag.Int("trials", 16, "decay sampler trials")
	)
	flag.Parse()
	if err := run(*load, *random, *p, *core, *gbad, *seed, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "spokesman:", err)
		os.Exit(1)
	}
}

func run(load, random string, p float64, core int, gbad string, seed uint64, trials int) error {
	r := rng.New(seed)
	b, name, err := buildInstance(load, random, p, core, gbad, r)
	if err != nil {
		return err
	}
	fmt.Printf("%s: |S|=%d |N|=%d |E|=%d δS=%.2f δN=%.2f\n",
		name, b.NS(), b.NN(), b.M(), b.AvgDegS(), b.AvgDegN())
	fmt.Printf("bounds: Chlamtac–Weinstein |N|/log|S| = %.2f, paper scale |N|/log(2·min δ) = %.2f\n\n",
		bounds.ChlamtacWeinstein(b.NN(), b.NS()),
		bounds.PaperSpokesman(b.NN(), b.AvgDegN(), b.AvgDegS()))

	tb := table.New("Spokesman election results",
		"algorithm", "|Γ¹_S(S')|", "|S'|", "fraction of |N|")
	add := func(sel spokesman.Selection) {
		tb.AddRow(sel.Method, sel.Unique, len(sel.Subset),
			float64(sel.Unique)/float64(maxInt(b.NN(), 1)))
	}
	add(spokesman.Decay(b, trials, r))
	add(spokesman.GreedyUnique(b))
	add(spokesman.PartitionSelect(b))
	add(spokesman.PartitionRecursive(b))
	add(spokesman.DegreeClass(b, spokesman.OptimalC))
	add(spokesman.BestImproved(b, trials, r))
	if b.NS() <= spokesman.MaxExhaustiveS {
		opt, err := spokesman.Exhaustive(b)
		if err == nil {
			add(opt)
		}
	} else {
		tb.Note = fmt.Sprintf("(exact optimum omitted: |S| = %d exceeds the exhaustive limit %d)",
			b.NS(), spokesman.MaxExhaustiveS)
	}
	fmt.Print(tb.Text())
	return nil
}

func buildInstance(load, random string, p float64, core int, gbad string, r *rng.RNG) (*graph.Bipartite, string, error) {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		b, err := graph.ReadBipartiteEdgeList(f)
		return b, load, err
	case core > 0:
		c, err := badgraph.NewCore(core)
		if err != nil {
			return nil, "", err
		}
		return c.B, fmt.Sprintf("core-%d", core), nil
	case gbad != "":
		var s, delta, beta int
		if _, err := fmt.Sscanf(gbad, "%d,%d,%d", &s, &delta, &beta); err != nil {
			return nil, "", fmt.Errorf("bad -gbad %q: want s,∆,β", gbad)
		}
		g, err := badgraph.NewGBad(s, delta, beta)
		if err != nil {
			return nil, "", err
		}
		return g.B, fmt.Sprintf("gbad-%s", gbad), nil
	case random != "":
		var s, n int
		if _, err := fmt.Sscanf(random, "%dx%d", &s, &n); err != nil {
			return nil, "", fmt.Errorf("bad -random %q: want SxN", random)
		}
		return gen.RandomBipartite(s, n, p, r), fmt.Sprintf("random-%s", random), nil
	default:
		return gen.RandomBipartite(20, 30, p, r), "random-20x30 (default)", nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
