// Command spokesman solves the spokesman election problem (Section 4.2.1)
// on a bipartite instance: given G = (S, N, E), find S' ⊆ S maximizing the
// number of N-vertices with exactly one neighbor in S'.
//
// Usage:
//
//	spokesman -load instance.txt            (WriteBipartiteEdgeList format)
//	spokesman -random 30x40 -p 0.1 -seed 7
//	spokesman -core 32                      (the Lemma 4.4 core graph)
//	spokesman -gbad 16,8,5                  (the Lemma 3.3 construction)
//	spokesman -core 32 -format json
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.Load, "load", cfg.Load, "bipartite edge-list file")
	flag.StringVar(&cfg.Random, "random", cfg.Random, "random instance SxN, e.g. 30x40")
	flag.Float64Var(&cfg.P, "p", cfg.P, "edge probability for -random")
	flag.IntVar(&cfg.Core, "core", cfg.Core, "core graph parameter s (power of two)")
	flag.StringVar(&cfg.GBad, "gbad", cfg.GBad, "Gbad parameters s,∆,β e.g. 16,8,5")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "RNG seed")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "decay sampler trials")
	flag.StringVar(&cfg.Format, "format", cfg.Format, "output format: text|json")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spokesman:", err)
		os.Exit(1)
	}
}
