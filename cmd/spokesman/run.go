package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// Config is the full parameter set of one spokesman invocation; main fills
// it from flags, tests construct it directly.
type Config struct {
	Load   string
	Random string
	P      float64
	Core   int
	GBad   string
	Seed   uint64
	Trials int
	Format string
}

func defaultConfig() Config {
	return Config{
		P:      0.1,
		Seed:   1,
		Trials: 16,
		Format: "text",
	}
}

// selectionRow is one algorithm's outcome, feeding both output formats.
type selectionRow struct {
	Algorithm  string  `json:"algorithm"`
	Unique     int     `json:"unique"`
	SubsetSize int     `json:"subset_size"`
	Fraction   float64 `json:"fraction_of_n"`
}

// spokesmanReport is the full JSON document.
type spokesmanReport struct {
	Instance   string         `json:"instance"`
	NS         int            `json:"ns"`
	NN         int            `json:"nn"`
	M          int            `json:"m"`
	AvgDegS    float64        `json:"avg_deg_s"`
	AvgDegN    float64        `json:"avg_deg_n"`
	BoundCW    float64        `json:"bound_chlamtac_weinstein"`
	BoundPaper float64        `json:"bound_paper_scale"`
	Results    []selectionRow `json:"results"`
	Note       string         `json:"note,omitempty"`
}

func run(cfg Config, w io.Writer) error {
	if cfg.Format != "text" && cfg.Format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", cfg.Format)
	}
	r := rng.New(cfg.Seed)
	b, name, err := buildInstance(cfg, r)
	if err != nil {
		return err
	}
	rep := spokesmanReport{
		Instance: name,
		NS:       b.NS(), NN: b.NN(), M: b.M(),
		AvgDegS: b.AvgDegS(), AvgDegN: b.AvgDegN(),
		BoundCW:    bounds.ChlamtacWeinstein(b.NN(), b.NS()),
		BoundPaper: bounds.PaperSpokesman(b.NN(), b.AvgDegN(), b.AvgDegS()),
	}

	add := func(sel spokesman.Selection) {
		rep.Results = append(rep.Results, selectionRow{
			Algorithm:  sel.Method,
			Unique:     sel.Unique,
			SubsetSize: len(sel.Subset),
			Fraction:   float64(sel.Unique) / float64(max(b.NN(), 1)),
		})
	}
	add(spokesman.Decay(b, cfg.Trials, r))
	add(spokesman.GreedyUnique(b))
	add(spokesman.PartitionSelect(b))
	add(spokesman.PartitionRecursive(b))
	add(spokesman.DegreeClass(b, spokesman.OptimalC))
	add(spokesman.BestImproved(b, cfg.Trials, r))
	if b.NS() <= spokesman.MaxExhaustiveS {
		if opt, err := spokesman.Exhaustive(b); err == nil {
			add(opt)
		}
	} else {
		rep.Note = fmt.Sprintf("(exact optimum omitted: |S| = %d exceeds the exhaustive limit %d)",
			b.NS(), spokesman.MaxExhaustiveS)
	}

	if cfg.Format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "%s: |S|=%d |N|=%d |E|=%d δS=%.2f δN=%.2f\n",
		rep.Instance, rep.NS, rep.NN, rep.M, rep.AvgDegS, rep.AvgDegN)
	fmt.Fprintf(w, "bounds: Chlamtac–Weinstein |N|/log|S| = %.2f, paper scale |N|/log(2·min δ) = %.2f\n\n",
		rep.BoundCW, rep.BoundPaper)
	tb := table.New("Spokesman election results",
		"algorithm", "|Γ¹_S(S')|", "|S'|", "fraction of |N|")
	for _, row := range rep.Results {
		tb.AddRow(row.Algorithm, row.Unique, row.SubsetSize, row.Fraction)
	}
	tb.Note = rep.Note
	_, err = io.WriteString(w, tb.Text())
	return err
}

func buildInstance(cfg Config, r *rng.RNG) (*graph.Bipartite, string, error) {
	switch {
	case cfg.Load != "":
		f, err := os.Open(cfg.Load)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		b, err := graph.ReadBipartiteEdgeList(f)
		return b, cfg.Load, err
	case cfg.Core > 0:
		c, err := badgraph.NewCore(cfg.Core)
		if err != nil {
			return nil, "", err
		}
		return c.B, fmt.Sprintf("core-%d", cfg.Core), nil
	case cfg.GBad != "":
		var s, delta, beta int
		if _, err := fmt.Sscanf(cfg.GBad, "%d,%d,%d", &s, &delta, &beta); err != nil {
			return nil, "", fmt.Errorf("bad -gbad %q: want s,∆,β", cfg.GBad)
		}
		g, err := badgraph.NewGBad(s, delta, beta)
		if err != nil {
			return nil, "", err
		}
		return g.B, fmt.Sprintf("gbad-%s", cfg.GBad), nil
	case cfg.Random != "":
		var s, n int
		if _, err := fmt.Sscanf(cfg.Random, "%dx%d", &s, &n); err != nil {
			return nil, "", fmt.Errorf("bad -random %q: want SxN", cfg.Random)
		}
		return gen.RandomBipartite(s, n, cfg.P, r), fmt.Sprintf("random-%s", cfg.Random), nil
	default:
		return gen.RandomBipartite(20, 30, cfg.P, r), "random-20x30 (default)", nil
	}
}
