// Command wexpload is a deterministic load harness for wexpd and
// wexprouter: it replays a seeded request sequence over raw pipelined
// HTTP/1.1 connections and reports throughput plus an HDR-style latency
// distribution as a BENCH_load.json record comparable by cmd/benchgate.
//
// Two generator modes:
//
//   - open loop (-rate R): Poisson arrivals at R req/s from a seeded
//     exponential stream; latency is measured from the *scheduled*
//     arrival, so server queueing delay is charged to the server.
//   - closed loop (-rate 0, default): each connection keeps a window of
//     -depth requests outstanding; measures peak sustainable throughput.
//
// Usage:
//
//	wexpload -target http://127.0.0.1:8081 -profile cached -count 50000
//	wexpload -target http://127.0.0.1:8080 -label routed-3 -profile mixed \
//	         -rate 20000 -out BENCH_load.json -append
//
// The same seed always produces the same request sequence, so two runs
// against the same fleet differ only by machine noise. See the README
// "Deployment" section for the single-node vs routed recipe.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	def := defaultConfig()
	var cfg Config
	flag.StringVar(&cfg.Target, "target", "", "base URL of the wexpd node or wexprouter to load (required)")
	flag.StringVar(&cfg.Label, "label", def.Label, "record label in BENCH_load.json (e.g. single, routed-3)")
	flag.StringVar(&cfg.Profile, "profile", def.Profile, "request mix: cached (one hot key) or mixed (deterministic pool)")
	flag.IntVar(&cfg.Count, "count", def.Count, "measured requests")
	flag.Float64Var(&cfg.Rate, "rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	flag.IntVar(&cfg.Conns, "conns", def.Conns, "pipelined TCP connections")
	flag.IntVar(&cfg.Depth, "depth", def.Depth, "per-connection outstanding-request window")
	flag.Uint64Var(&cfg.Seed, "seed", def.Seed, "seed for arrivals and request selection")
	flag.IntVar(&cfg.Warmup, "warmup", def.Warmup, "unmeasured priming passes over the URL pool")
	flag.StringVar(&cfg.Out, "out", "", "BENCH_load.json path (empty = stdout summary only)")
	flag.BoolVar(&cfg.Append, "append", false, "merge the record into -out instead of overwriting")
	flag.Parse()

	if cfg.Target == "" {
		fmt.Fprintln(os.Stderr, "wexpload: -target is required")
		flag.Usage()
		os.Exit(2)
	}
	rec, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wexpload:", err)
		os.Exit(1)
	}
	fmt.Printf("wexpload %s/%s: %.0f req/s  p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms  errors %d\n",
		rec.Label, rec.Profile, rec.RequestsPerSec,
		float64(rec.P50NS)/1e6, float64(rec.P90NS)/1e6, float64(rec.P99NS)/1e6,
		float64(rec.MaxNS)/1e6, rec.Errors)
	if cfg.Out != "" {
		if err := writeRecord(cfg.Out, rec, cfg.Append); err != nil {
			fmt.Fprintln(os.Stderr, "wexpload:", err)
			os.Exit(1)
		}
		fmt.Printf("wexpload: wrote %s\n", cfg.Out)
	}
	if rec.Errors > 0 {
		os.Exit(1)
	}
}
