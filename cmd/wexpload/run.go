package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sync"
	"time"

	"wexp/internal/rng"
	"wexp/internal/stats"
)

// loadSchema is the perf-record schema of BENCH_load.json; cmd/benchgate
// compares files of this schema record-by-record like the other BENCH
// files.
const loadSchema = "wexp-bench/load-v1"

// Config is the full parameter set of one wexpload run; main fills it
// from flags, tests construct it directly.
type Config struct {
	// Target is the base URL of the wexpd node or wexprouter front to load.
	Target string
	// Label names the record in BENCH_load.json (e.g. "single", "routed-3").
	Label string
	// Profile selects the request mix: "cached" replays one hot request,
	// "mixed" cycles a deterministic pool of distinct cache keys.
	Profile string
	// Count is the number of measured requests.
	Count int
	// Rate is the open-loop arrival rate in requests/second; 0 selects the
	// closed-loop (windowed) mode.
	Rate float64
	// Conns is the number of pipelined TCP connections.
	Conns int
	// Depth is the per-connection outstanding-request window.
	Depth int
	// Seed drives arrival times and request selection; same seed, same
	// request sequence.
	Seed uint64
	// Warmup is the number of unmeasured priming passes over the URL pool
	// before the clock starts.
	Warmup int
	// Out is the BENCH_load.json path ("" prints the record to stdout only).
	Out string
	// Append merges the record into an existing Out file instead of
	// overwriting it (replacing any record with the same identity).
	Append bool
}

func defaultConfig() Config {
	return Config{Label: "single", Profile: "cached", Count: 20000, Conns: 4, Depth: 32, Seed: 1, Warmup: 2}
}

// Record is one BENCH_load.json entry. label/profile/rate/conns/count are
// the benchgate identity; the *_ns, requests_per_sec, ns_per_op, and
// errors fields are measurements (listed in benchgate's timingFields).
type Record struct {
	Label          string  `json:"label"`
	Profile        string  `json:"profile"`
	Rate           float64 `json:"rate"`
	Conns          int     `json:"conns"`
	Count          int     `json:"count"`
	NsPerOp        float64 `json:"ns_per_op"` // mean latency, gated by benchgate
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50NS          int64   `json:"p50_ns"`
	P90NS          int64   `json:"p90_ns"`
	P99NS          int64   `json:"p99_ns"`
	MaxNS          int64   `json:"max_ns"`
	Errors         int64   `json:"errors"`
}

type loadFile struct {
	Schema     string   `json:"schema"`
	Go         string   `json:"go"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Records    []Record `json:"records"`
}

// profileURLs returns the deterministic request pool of a profile. Every
// path is a GET against the wexpd /v1 API (valid through wexprouter too).
func profileURLs(profile string) ([]string, error) {
	switch profile {
	case "cached":
		// One hot key: after warmup this measures the memoized read path
		// end to end (routing, cache lookup, response write).
		return []string{"/v1/expansion?family=hypercube&size=3&obj=ordinary"}, nil
	case "mixed":
		// Distinct cache keys across ops, families, and graph digests, so
		// a routed fleet spreads them over backends. All deterministic
		// (fixed seeds), all cached after one warmup pass, and all sized so
		// the exact expansion solver stays well inside the default work
		// budget — the harness measures the service, not the solver.
		return []string{
			"/v1/expansion?family=hypercube&size=3&obj=ordinary",
			"/v1/expansion?family=hypercube&size=4&obj=ordinary",
			"/v1/expansion?family=hypercube&size=3&obj=wireless&alpha=0.5",
			"/v1/expansion?family=torus&size=3&obj=ordinary",
			"/v1/expansion?family=torus&size=4&obj=ordinary",
			"/v1/expansion?family=cycle&size=12&obj=ordinary",
			"/v1/expansion?family=cycle&size=16&obj=ordinary",
			"/v1/expansion?family=grid&size=4&obj=ordinary",
			"/v1/spokesman?family=hypercube&size=3&s=0,1,2&trials=8&seed=1",
			"/v1/spokesman?family=cycle&size=16&s=0,3,7&trials=8&seed=1",
			"/v1/broadcast?family=cycle&size=16&protocol=decay&trials=50&seed=1",
			"/v1/broadcast?family=hypercube&size=3&protocol=flood&trials=50&seed=1",
		}, nil
	default:
		return nil, fmt.Errorf("unknown profile %q (want cached|mixed)", profile)
	}
}

// plan is the precomputed deterministic request schedule: which URL each
// request hits and (open loop) when it departs.
type plan struct {
	urls  []string
	picks []int           // per request: index into urls
	sched []time.Duration // per request: arrival offset; nil in closed loop
}

// buildPlan derives the full request sequence from the seed. Arrival gaps
// are exponential (Poisson arrivals) at cfg.Rate; picks are uniform over
// the pool. Split streams keep the two choices independent.
func buildPlan(cfg Config) (plan, error) {
	urls, err := profileURLs(cfg.Profile)
	if err != nil {
		return plan{}, err
	}
	r := rng.New(cfg.Seed)
	pickR, gapR := r.Split(), r.Split()
	p := plan{urls: urls, picks: make([]int, cfg.Count)}
	for i := range p.picks {
		p.picks[i] = pickR.Intn(len(urls))
	}
	if cfg.Rate > 0 {
		p.sched = make([]time.Duration, cfg.Count)
		var at float64 // seconds
		for i := range p.sched {
			at += -math.Log(1-gapR.Float64()) / cfg.Rate
			p.sched[i] = time.Duration(at * float64(time.Second))
		}
	}
	return p, nil
}

// connResult is one connection's share of the measurement.
type connResult struct {
	hist *stats.LogHistogram
	errs int64
}

// runConn drives one pipelined HTTP/1.1 connection over raw TCP. idxs are
// the request indices assigned to this connection, in order. In open-loop
// mode each request departs at base+sched[i] and its latency is measured
// from the scheduled arrival (so queueing delay counts, as an open-loop
// harness must); in closed-loop mode a window of depth requests is kept
// outstanding and latency is measured from the actual send.
func runConn(host string, reqBytes [][]byte, p plan, idxs []int, base time.Time, depth int) connResult {
	res := connResult{hist: stats.NewLogHistogram()}
	c, err := net.Dial("tcp", host)
	if err != nil {
		res.errs = int64(len(idxs))
		return res
	}
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 32<<10)

	openLoop := p.sched != nil
	starts := make(chan time.Time, depth)
	tokens := make(chan struct{}, depth)
	for i := 0; i < depth; i++ {
		tokens <- struct{}{}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		proto := &http.Request{Method: http.MethodGet}
		for st := range starts {
			resp, err := http.ReadResponse(br, proto)
			if err != nil {
				// Connection lost: everything already pipelined is gone.
				res.errs++
				for range starts {
					res.errs++
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				res.errs++
			} else {
				res.hist.Record(time.Since(st).Nanoseconds())
			}
			if !openLoop {
				tokens <- struct{}{}
			}
		}
	}()

	var werr error
	for n, i := range idxs {
		var st time.Time
		if openLoop {
			st = base.Add(p.sched[i])
			if d := time.Until(st); d > 0 {
				time.Sleep(d)
			}
		} else {
			<-tokens
			st = time.Now()
		}
		if _, werr = bw.Write(reqBytes[p.picks[i]]); werr == nil {
			werr = bw.Flush()
		}
		if werr != nil {
			res.errs += int64(len(idxs) - n)
			break
		}
		starts <- st
	}
	close(starts)
	wg.Wait()
	return res
}

// runLoad executes the full measurement: warmup passes over the URL pool,
// then cfg.Count requests over cfg.Conns pipelined connections, merged
// into one latency histogram.
func runLoad(cfg Config) (Record, error) {
	if cfg.Count <= 0 || cfg.Conns <= 0 || cfg.Depth <= 0 {
		return Record{}, fmt.Errorf("count, conns, and depth must be positive")
	}
	u, err := url.Parse(cfg.Target)
	if err != nil || u.Host == "" {
		return Record{}, fmt.Errorf("bad target %q (want http://host:port)", cfg.Target)
	}
	if u.Scheme != "http" {
		return Record{}, fmt.Errorf("target scheme %q unsupported (raw-TCP client speaks http)", u.Scheme)
	}
	p, err := buildPlan(cfg)
	if err != nil {
		return Record{}, err
	}

	// Warmup primes every distinct key (family builds, result cache fills,
	// and — through a router — the owning backend's caches) outside the
	// measured window.
	client := &http.Client{Timeout: 30 * time.Second}
	for pass := 0; pass < max(cfg.Warmup, 1); pass++ {
		for _, path := range p.urls {
			resp, err := client.Get(cfg.Target + path)
			if err != nil {
				return Record{}, fmt.Errorf("warmup %s: %w", path, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return Record{}, fmt.Errorf("warmup %s: status %d", path, resp.StatusCode)
			}
		}
	}

	reqBytes := make([][]byte, len(p.urls))
	for i, path := range p.urls {
		reqBytes[i] = []byte("GET " + path + " HTTP/1.1\r\nHost: " + u.Host + "\r\nUser-Agent: wexpload\r\n\r\n")
	}

	// Round-robin request indices across connections, preserving global
	// order within each connection.
	assign := make([][]int, cfg.Conns)
	for i := 0; i < cfg.Count; i++ {
		assign[i%cfg.Conns] = append(assign[i%cfg.Conns], i)
	}

	base := time.Now()
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	for ci := range assign {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			results[ci] = runConn(u.Host, reqBytes, p, assign[ci], base, cfg.Depth)
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(base)

	hist := stats.NewLogHistogram()
	var errs int64
	for _, r := range results {
		hist.Merge(r.hist)
		errs += r.errs
	}
	rec := Record{
		Label:          cfg.Label,
		Profile:        cfg.Profile,
		Rate:           cfg.Rate,
		Conns:          cfg.Conns,
		Count:          cfg.Count,
		NsPerOp:        hist.Mean(),
		RequestsPerSec: float64(hist.Count()) / elapsed.Seconds(),
		P50NS:          hist.Quantile(0.50),
		P90NS:          hist.Quantile(0.90),
		P99NS:          hist.Quantile(0.99),
		MaxNS:          hist.Max(),
		Errors:         errs,
	}
	return rec, nil
}

// identity reports whether two records are the same benchgate identity
// (all non-timing fields equal).
func identity(a, b Record) bool {
	return a.Label == b.Label && a.Profile == b.Profile &&
		a.Rate == b.Rate && a.Conns == b.Conns && a.Count == b.Count
}

// writeRecord writes (or, with appendMode, merges) rec into the
// BENCH_load.json file at path. Merging replaces an existing record with
// the same identity so re-runs stay benchgate-clean (no duplicates).
func writeRecord(path string, rec Record, appendMode bool) error {
	f := loadFile{Schema: loadSchema, Go: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	if appendMode {
		if data, err := os.ReadFile(path); err == nil {
			var prev loadFile
			if err := json.Unmarshal(data, &prev); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if prev.Schema != loadSchema {
				return fmt.Errorf("%s: schema %q, want %q", path, prev.Schema, loadSchema)
			}
			f.Records = prev.Records
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	replaced := false
	for i := range f.Records {
		if identity(f.Records[i], rec) {
			f.Records[i] = rec
			replaced = true
			break
		}
	}
	if !replaced {
		f.Records = append(f.Records, rec)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
