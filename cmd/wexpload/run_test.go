package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wexp/internal/service"
)

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{Workers: 1}))
	t.Cleanup(ts.Close)
	return ts
}

func TestPlanDeterminism(t *testing.T) {
	cfg := defaultConfig()
	cfg.Profile = "mixed"
	cfg.Count = 500
	cfg.Rate = 1000
	a, err := buildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := buildPlan(cfg)
	if !reflect.DeepEqual(a.picks, b.picks) || !reflect.DeepEqual(a.sched, b.sched) {
		t.Fatal("same seed must produce the identical plan")
	}
	cfg.Seed = 2
	c, _ := buildPlan(cfg)
	if reflect.DeepEqual(a.picks, c.picks) {
		t.Fatal("different seeds produced the same pick sequence")
	}
	// Arrival offsets must be strictly increasing (cumulative positive gaps).
	for i := 1; i < len(a.sched); i++ {
		if a.sched[i] <= a.sched[i-1] {
			t.Fatalf("sched not increasing at %d: %v <= %v", i, a.sched[i], a.sched[i-1])
		}
	}
	if _, err := buildPlan(Config{Profile: "bogus", Count: 1}); err == nil {
		t.Fatal("bogus profile must error")
	}
}

func TestProfileURLsAllServable(t *testing.T) {
	ts := newBackend(t)
	for _, profile := range []string{"cached", "mixed"} {
		urls, err := profileURLs(profile)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range urls {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s %s: status %d: %s", profile, path, resp.StatusCode, body)
			}
		}
	}
}

func TestClosedLoopAgainstService(t *testing.T) {
	ts := newBackend(t)
	cfg := defaultConfig()
	cfg.Target = ts.URL
	cfg.Count = 300
	cfg.Conns = 2
	cfg.Depth = 8
	cfg.Warmup = 1
	rec, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rec.Errors)
	}
	if rec.RequestsPerSec <= 0 || rec.NsPerOp <= 0 {
		t.Fatalf("degenerate measurement: %+v", rec)
	}
	if !(rec.P50NS <= rec.P90NS && rec.P90NS <= rec.P99NS && rec.P99NS <= rec.MaxNS) {
		t.Fatalf("quantiles not ordered: p50=%d p90=%d p99=%d max=%d",
			rec.P50NS, rec.P90NS, rec.P99NS, rec.MaxNS)
	}
}

func TestOpenLoopAgainstService(t *testing.T) {
	ts := newBackend(t)
	cfg := defaultConfig()
	cfg.Target = ts.URL
	cfg.Profile = "mixed"
	cfg.Count = 200
	cfg.Conns = 2
	cfg.Depth = 16
	cfg.Rate = 4000 // fast enough that the test finishes in ~50ms of schedule
	cfg.Warmup = 1
	rec, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rec.Errors)
	}
	if rec.Rate != 4000 {
		t.Fatalf("record rate = %g, want 4000", rec.Rate)
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	if _, err := runLoad(Config{Target: "http://x", Count: 0, Conns: 1, Depth: 1}); err == nil {
		t.Error("count=0 must error")
	}
	if _, err := runLoad(Config{Target: ":no-scheme", Count: 1, Conns: 1, Depth: 1}); err == nil {
		t.Error("bad target must error")
	}
	if _, err := runLoad(Config{Target: "https://x", Count: 1, Conns: 1, Depth: 1}); err == nil {
		t.Error("https target must error (raw-TCP client)")
	}
}

func TestWriteRecordAppendAndReplace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	a := Record{Label: "single", Profile: "cached", Conns: 4, Count: 100, RequestsPerSec: 10}
	b := Record{Label: "routed-3", Profile: "cached", Conns: 4, Count: 100, RequestsPerSec: 25}
	if err := writeRecord(out, a, false); err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(out, b, true); err != nil {
		t.Fatal(err)
	}
	// Same identity as a, fresher measurement: must replace, not duplicate
	// (benchgate rejects duplicate identities).
	a2 := a
	a2.RequestsPerSec = 12
	if err := writeRecord(out, a2, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f loadFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != loadSchema {
		t.Errorf("schema = %q, want %q", f.Schema, loadSchema)
	}
	if len(f.Records) != 2 {
		t.Fatalf("records = %d, want 2 (replace, not append)", len(f.Records))
	}
	if f.Records[0].RequestsPerSec != 12 || f.Records[1].Label != "routed-3" {
		t.Errorf("unexpected records: %+v", f.Records)
	}
	// The on-disk record must carry ns_per_op so benchgate gates it.
	var probe struct {
		Records []map[string]json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		t.Fatal(err)
	}
	if _, ok := probe.Records[0]["ns_per_op"]; !ok {
		t.Error("record is missing ns_per_op — benchgate would skip it")
	}
}
