// Command wexprouter is the shard router for a fleet of wexpd backends:
// it places every graph (and every computation addressing one) on a
// backend by rendezvous hashing of the graph's content digest, coalesces
// identical concurrent requests at the fleet edge, and optionally replays
// hot responses from a byte-level edge cache.
//
// Usage:
//
//	wexprouter -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.2:8082
//	wexprouter -addr :8080 -backends ... -edge-cache-mb 64
//
// The routed API is the wexpd /v1 API; job IDs gain a b<i>. prefix naming
// the owning backend. See internal/router/README.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wexp"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated wexpd base URLs (required)")
		cacheMB  = flag.Int64("edge-cache-mb", 0, "edge response cache budget in MiB (0 = disabled)")
	)
	flag.Parse()

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	cfg := wexp.RouterConfig{Backends: list, CacheBytes: *cacheMB << 20}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("wexprouter: serving on %s over %d backends\n", *addr, len(list))
	if err := wexp.ServeRouter(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wexprouter:", err)
		os.Exit(1)
	}
}
