// Command wexpd is the wexp graph-analysis daemon: a stdlib-only
// HTTP/JSON service exposing the exact expansion engine, the spokesman
// portfolio, the Monte-Carlo broadcast simulator, and the E1–E14
// reproduction suite behind a content-addressed graph store, a memoized
// byte-level result cache with singleflight coalescing, and a cancellable
// job engine.
//
// Usage:
//
//	wexpd -addr :8080
//	wexpd -addr :8080 -cache-mb 256 -workers 8
//
// Quickstart:
//
//	curl -X POST 'localhost:8080/v1/graphs?family=hypercube&size=4'
//	curl 'localhost:8080/v1/expansion?family=hypercube&size=4&obj=wireless&alpha=0.5'
//	curl 'localhost:8080/v1/broadcast?family=cplus&size=32&protocol=decay&trials=200&async=1'
//	curl 'localhost:8080/v1/jobs/job-000001'
//	curl -X DELETE 'localhost:8080/v1/jobs/job-000001'
//	curl 'localhost:8080/metrics'
//
// See internal/service/README.md for the full API reference and the
// caching/determinism contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"wexp"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "", "durable state directory (graphs, jobs WAL, checkpoints); empty = in-memory")
		cacheMB   = flag.Int64("cache-mb", 64, "result cache budget in MiB")
		maxGraphs = flag.Int("max-graphs", 0, "graph store capacity (0 = default 4096)")
		maxJobs   = flag.Int("max-jobs", 0, "retained job records (0 = default 1024)")
		workers   = flag.Int("workers", 0, "engine worker-pool width (0 = GOMAXPROCS; results identical at any width)")
		maxBudget = flag.Uint64("max-budget", 0, "per-request exact-enumeration budget cap (0 = engine default)")
		maxTrials = flag.Int("max-trials", 0, "per-request Monte-Carlo trial cap (0 = 1000000)")
	)
	flag.Parse()

	cfg := wexp.ServiceConfig{
		DataDir:    *dataDir,
		CacheBytes: *cacheMB << 20,
		MaxGraphs:  *maxGraphs,
		MaxJobs:    *maxJobs,
		Workers:    *workers,
		MaxBudget:  *maxBudget,
		MaxTrials:  *maxTrials,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("wexpd: serving on %s (cache %d MiB)\n", *addr, *cacheMB)
	if err := wexp.Serve(ctx, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wexpd:", err)
		os.Exit(1)
	}
}
