package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
)

var update = os.Getenv("UPDATE_GOLDEN") != ""

func golden(t *testing.T, cfg Config, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestRunJSONGoldenHypercube(t *testing.T) {
	cfg := defaultConfig()
	cfg.Size, cfg.Format = 3, "json"
	// No Workers pin: the branch-and-bound engine's sets/pruned/visited
	// counters are bit-identical at every pool width, so the golden bytes
	// are machine-independent even with a floating GOMAXPROCS.
	golden(t, cfg, "hypercube3.json")
}

func TestRunJSONGoldenProfile(t *testing.T) {
	cfg := defaultConfig()
	cfg.Family, cfg.Size, cfg.Alpha, cfg.Profile, cfg.Format = "cplus", 6, 0.4, true, "json"
	golden(t, cfg, "cplus6_profile.json")
}

func TestRunJSONObservation21(t *testing.T) {
	// The exact path must report the Observation 2.1 chain β ≥ βw ≥ βu.
	cfg := defaultConfig()
	cfg.Family, cfg.Size, cfg.Format = "cycle", 10, "json"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep wexpReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	vals := map[string]float64{}
	for _, m := range rep.Measurements {
		if m.Mode == "exact" {
			vals[m.Quantity] = m.Numeric
		}
	}
	b, bw, bu := vals["β (ordinary)"], vals["βw (wireless)"], vals["βu (unique)"]
	if !(b >= bw && bw >= bu) {
		t.Fatalf("Observation 2.1 violated in output: β=%g βw=%g βu=%g", b, bw, bu)
	}
	if rep.N != 10 || rep.Alpha != 0.5 {
		t.Fatalf("header wrong: %+v", rep)
	}
}

func TestRunEstimatePathDeterministic(t *testing.T) {
	// Above the exact budget the tool falls back to the randomized certified
	// tier and, past that, to seeded estimators; the same seed must
	// reproduce the same JSON bytes whichever tier each quantity lands on.
	cfg := defaultConfig()
	cfg.Family, cfg.Size, cfg.Alpha, cfg.Seed, cfg.Format = "margulis", 6, 0.25, 7, "json"
	var a, b bytes.Buffer
	if err := run(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("estimate path not deterministic for a fixed seed")
	}
	var rep wexpReport
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Measurements {
		if m.Mode == "exact" {
			t.Fatalf("margulis(6) at α=0.25 should be over budget, got exact row %+v", m)
		}
	}
}

func TestRunCertifiedFrontier(t *testing.T) {
	// The acceptance instance: n=200, k ≤ 8 is far past the exact frontier,
	// so the CLI must fall to the randomized tier and report a certified β
	// with failure_prob ≤ 1e-9 inside the default budget.
	path := filepath.Join(t.TempDir(), "er200.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, gen.ErdosRenyi(200, 0.08, rng.New(200))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := defaultConfig()
	cfg.Load, cfg.Alpha, cfg.Seed, cfg.Format = path, 0.04, 42, "json"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep wexpReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	var beta *measurement
	for i := range rep.Measurements {
		if rep.Measurements[i].Quantity == "β (ordinary)" {
			beta = &rep.Measurements[i]
		}
	}
	if beta == nil {
		t.Fatal("no β row")
	}
	if beta.Mode != "certified" {
		t.Fatalf("β mode = %q, want certified (row %+v)", beta.Mode, beta)
	}
	c := beta.Certificate
	if c == nil || c.Kind != expansion.CertCertified {
		t.Fatalf("β certificate missing or wrong kind: %+v", c)
	}
	if c.FailureProb <= 0 || c.FailureProb > 1e-9 {
		t.Fatalf("failure_prob = %g, want (0, 1e-9]", c.FailureProb)
	}
	if c.Trials == 0 || beta.Numeric <= 0 {
		t.Fatalf("certified row carries no work: %+v", beta)
	}
}

func TestRunLoadEdgeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, gen.Cycle(8)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg := defaultConfig()
	cfg.Load, cfg.Format = path, "json"
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var rep wexpReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.N != 8 || rep.M != 8 || rep.Family != path {
		t.Fatalf("loaded graph header wrong: %+v", rep)
	}
}

func TestRunTextFormat(t *testing.T) {
	cfg := defaultConfig()
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hypercube(4): n=16 m=32", "β (ordinary)", "βw (wireless)", "exact"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cfg := defaultConfig()
	cfg.Format = "yaml"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	cfg = defaultConfig()
	cfg.Family = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown family accepted")
	}
	cfg = defaultConfig()
	cfg.Alpha = 0.0001
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("degenerate alpha accepted")
	}
	cfg = defaultConfig()
	cfg.Load = filepath.Join(t.TempDir(), "missing.edges")
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("missing load file accepted")
	}
}
