// Command wexp measures the three expansion notions of the paper on a
// generated graph family and prints them next to the paper's bounds.
//
// Usage:
//
//	wexp -family hypercube -size 4 -alpha 0.5
//	wexp -family cplus -size 8 -alpha 0.5 -format json
//	wexp -family cycle -size 72 -alpha 0.04 -budget 4194304   (exact, n > 64)
//	wexp -family margulis -size 16 -alpha 0.25 -seed 7        (estimates)
//
// The exact engine enumerates candidate sets by cardinality under a work
// budget (one unit per set for β/βu, 2^|S| units for βw) fanned over a
// deterministic worker pool, so any n is exact as long as the enumeration
// fits the budget — beyond it the tool prints certified one-sided bounds
// and labels them.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

func main() {
	cfg := defaultConfig()
	var cpuProfile, memProfile string
	flag.StringVar(&cfg.Family, "family", cfg.Family, "graph family: complete|cycle|hypercube|grid|torus|tree|margulis|cplus|barbell")
	flag.IntVar(&cfg.Size, "size", cfg.Size, "family size parameter (n, dimension, side, ...)")
	flag.StringVar(&cfg.Load, "load", cfg.Load, "instead of -family: read an edge-list file (see graph.WriteEdgeList format)")
	flag.Float64Var(&cfg.Alpha, "alpha", cfg.Alpha, "expansion parameter α: sets up to α·n are considered")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "RNG seed for estimators")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "sampled sets for the estimators")
	flag.BoolVar(&cfg.Profile, "profile", cfg.Profile, "also print the exact per-size expansion profile (budget permitting)")
	flag.Uint64Var(&cfg.Budget, "budget", cfg.Budget, "exact-engine work budget in enumeration units (0 = default, 2^26)")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "exact-engine worker pool width (0 = GOMAXPROCS; results identical at any width)")
	flag.StringVar(&cfg.Format, "format", cfg.Format, "output format: text|json")
	flag.StringVar(&cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	flag.StringVar(&memProfile, "memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()
	// mainErr owns the deferred profile teardown: os.Exit here in main
	// would skip StopCPUProfile and leave a truncated, unparseable
	// cpuprofile behind on a failed run.
	if err := mainErr(cfg, cpuProfile, memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "wexp:", err)
		os.Exit(1)
	}
}

func mainErr(cfg Config, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(cfg, os.Stdout); err != nil {
		return err
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state live set before sampling
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
