// Command wexp measures the three expansion notions of the paper on a
// generated graph family and prints them next to the paper's bounds.
//
// Usage:
//
//	wexp -family hypercube -size 4 -alpha 0.5
//	wexp -family cplus -size 8 -alpha 0.5
//	wexp -family cycle -size 72 -alpha 0.04 -budget 4194304   (exact, n > 64)
//	wexp -family margulis -size 16 -alpha 0.25 -seed 7        (estimates)
//
// The exact engine enumerates candidate sets by cardinality under a work
// budget (one unit per set for β/βu, 2^|S| units for βw) fanned over a
// deterministic worker pool, so any n is exact as long as the enumeration
// fits the budget — beyond it the tool prints certified one-sided bounds
// and labels them.
package main

import (
	"flag"
	"fmt"
	"os"

	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

func main() {
	var (
		family  = flag.String("family", "hypercube", "graph family: complete|cycle|hypercube|grid|torus|tree|margulis|cplus|barbell")
		size    = flag.Int("size", 4, "family size parameter (n, dimension, side, ...)")
		load    = flag.String("load", "", "instead of -family: read an edge-list file (see graph.WriteEdgeList format)")
		alpha   = flag.Float64("alpha", 0.5, "expansion parameter α: sets up to α·n are considered")
		seed    = flag.Uint64("seed", 1, "RNG seed for estimators")
		trials  = flag.Int("trials", 40, "sampled sets for the estimators")
		profile = flag.Bool("profile", false, "also print the exact per-size expansion profile (budget permitting)")
		budget  = flag.Uint64("budget", 0, "exact-engine work budget in enumeration units (0 = default, 2^26)")
		workers = flag.Int("workers", 0, "exact-engine worker pool width (0 = GOMAXPROCS; results identical at any width)")
	)
	flag.Parse()
	if err := run(*family, *size, *load, *alpha, *seed, *trials, *profile, *budget, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "wexp:", err)
		os.Exit(1)
	}
}

func run(family string, size int, load string, alpha float64, seed uint64, trials int, profile bool, budget uint64, workers int) error {
	var g *graph.Graph
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return err
		}
		family, size = load, g.N()
	} else {
		var err error
		g, err = gen.FromFamily(gen.Family(family), size)
		if err != nil {
			return err
		}
	}
	r := rng.New(seed)
	fmt.Printf("%s(%d): n=%d m=%d ∆=%d avg=%.2f", family, size, g.N(), g.M(), g.MaxDegree(), g.AvgDegree())
	if lo, hi := g.ArboricityEstimate(); true {
		fmt.Printf(" arboricity∈[%d,%d]", lo, hi)
	}
	fmt.Println()

	opt := expansion.Options{Alpha: alpha, Budget: budget, Workers: workers}
	maxK := expansion.MaxSetSize(g.N(), alpha)
	if maxK < 1 {
		return fmt.Errorf("α=%g admits no nonempty set on n=%d", alpha, g.N())
	}
	// The wireless pass is the most expensive; if it fits the budget, run
	// everything exactly. The engine re-validates, so a race between this
	// check and the solve is impossible.
	exactAll := expansion.Feasible(g.N(), maxK, expansion.ObjWireless, budget)

	tb := table.New("Expansion measurements", "quantity", "value", "mode", "notes")
	if exactAll {
		rb, err := expansion.Exact(g, expansion.ObjOrdinary, opt)
		if err != nil {
			return err
		}
		rw, err := expansion.Exact(g, expansion.ObjWireless, opt)
		if err != nil {
			return err
		}
		ru, err := expansion.Exact(g, expansion.ObjUnique, opt)
		if err != nil {
			return err
		}
		tb.AddRow("β (ordinary)", rb.Value, "exact", fmt.Sprintf("%d sets, %d pruned", rb.Sets, rb.Pruned))
		tb.AddRow("βw (wireless)", rw.Value, "exact", fmt.Sprintf("%d sets, %d pruned", rw.Sets, rw.Pruned))
		tb.AddRow("βu (unique)", ru.Value, "exact", "Obs 2.1: β ≥ βw ≥ βu")
		tb.AddRow("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), rb.Value), "formula",
			"βw = Ω(β/log 2·min{∆/β, ∆β})")
	} else if expansion.Feasible(g.N(), maxK, expansion.ObjOrdinary, budget) {
		// β and βu are 2^|S| cheaper per set than βw: run them exactly and
		// bracket the wireless value.
		rb, err := expansion.Exact(g, expansion.ObjOrdinary, opt)
		if err != nil {
			return err
		}
		ru, err := expansion.Exact(g, expansion.ObjUnique, opt)
		if err != nil {
			return err
		}
		tb.AddRow("β (ordinary)", rb.Value, "exact", fmt.Sprintf("%d sets, %d pruned", rb.Sets, rb.Pruned))
		tb.AddRow("βu (unique)", ru.Value, "exact", "Obs 2.1: β ≥ βw ≥ βu")
		lower, upper := wirelessBracket(g, alpha, trials, r)
		// Obs 2.1 certifies βw ≤ β, so the exact β tightens the sampled
		// upper bound; the lower bound holds only over the sampled family.
		if rb.Value < upper {
			upper = rb.Value
		}
		if lower > upper {
			lower = upper
		}
		tb.AddRow("βw (wireless)", fmt.Sprintf("[%.4g, %.4g]", lower, upper), "bracket",
			"family lower / certified upper (βw enumeration over budget)")
		tb.AddRow("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), rb.Value), "formula", "")
	} else {
		est := expansion.EstimateOrdinary(g, alpha, trials, r)
		tb.AddRow("β (ordinary)", est.Bound, "upper bound", fmt.Sprintf("%d sets sampled", est.Sampled))
		estU := expansion.EstimateUnique(g, alpha, trials, r)
		tb.AddRow("βu (unique)", estU.Bound, "upper bound", "")
		lower, upper := wirelessBracket(g, alpha, trials, r)
		tb.AddRow("βw (wireless)", fmt.Sprintf("[%.4g, %.4g]", lower, upper), "bracket",
			"family lower / sampled upper")
		tb.AddRow("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), est.Bound), "formula", "")
	}
	fmt.Print(tb.Text())

	if profile {
		tp, err := expansion.ProfilesOpts(g, maxK, opt)
		if err != nil {
			return fmt.Errorf("profile unavailable: %w", err)
		}
		pt := table.New("Exact per-size profile (min over sets of each size)",
			"|S|", "β", "βw", "βu")
		for k := 1; k <= tp.MaxK; k++ {
			pt.AddRow(k, tp.Ordinary[k], tp.Wireless[k], tp.Unique[k])
		}
		pt.Note = "Observation 2.1 holds pointwise: β ≥ βw ≥ βu in every row."
		fmt.Print(pt.Text())
	}
	return nil
}

// wirelessBracket samples an adversarial set family and brackets βw over
// it with a certified spokesman lower bound per set.
func wirelessBracket(g *graph.Graph, alpha float64, trials int, r *rng.RNG) (lower, upper float64) {
	sets := expansion.SampleSets(g, alpha, trials, r)
	lower, upper, _ = expansion.WirelessBounds(g, sets, func(b *graph.Bipartite) int {
		return spokesman.Best(b, 12, r).Unique
	})
	return lower, upper
}
