// Command wexp measures the three expansion notions of the paper on a
// generated graph family and prints them next to the paper's bounds.
//
// Usage:
//
//	wexp -family hypercube -size 4 -alpha 0.5
//	wexp -family cplus -size 8 -alpha 0.5
//	wexp -family margulis -size 16 -alpha 0.25 -seed 7   (estimates)
//
// For graphs small enough the values are exact; beyond the exact-solver
// limits the tool prints certified one-sided bounds and labels them.
package main

import (
	"flag"
	"fmt"
	"os"

	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

func main() {
	var (
		family  = flag.String("family", "hypercube", "graph family: complete|cycle|hypercube|grid|torus|tree|margulis|cplus|barbell")
		size    = flag.Int("size", 4, "family size parameter (n, dimension, side, ...)")
		load    = flag.String("load", "", "instead of -family: read an edge-list file (see graph.WriteEdgeList format)")
		alpha   = flag.Float64("alpha", 0.5, "expansion parameter α: sets up to α·n are considered")
		seed    = flag.Uint64("seed", 1, "RNG seed for estimators")
		trials  = flag.Int("trials", 40, "sampled sets for the estimators")
		profile = flag.Bool("profile", false, "also print the exact per-size expansion profile (n ≤ 16)")
	)
	flag.Parse()
	if err := run(*family, *size, *load, *alpha, *seed, *trials, *profile); err != nil {
		fmt.Fprintln(os.Stderr, "wexp:", err)
		os.Exit(1)
	}
}

func run(family string, size int, load string, alpha float64, seed uint64, trials int, profile bool) error {
	var g *graph.Graph
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return err
		}
		family, size = load, g.N()
	} else {
		var err error
		g, err = gen.FromFamily(gen.Family(family), size)
		if err != nil {
			return err
		}
	}
	r := rng.New(seed)
	fmt.Printf("%s(%d): n=%d m=%d ∆=%d avg=%.2f", family, size, g.N(), g.M(), g.MaxDegree(), g.AvgDegree())
	if lo, hi := g.ArboricityEstimate(); true {
		fmt.Printf(" arboricity∈[%d,%d]", lo, hi)
	}
	fmt.Println()

	tb := table.New("Expansion measurements", "quantity", "value", "mode", "notes")
	if g.N() <= 16 {
		beta, betaW, betaU, err := expansion.Ordering(g, alpha)
		if err != nil {
			return err
		}
		tb.AddRow("β (ordinary)", beta, "exact", "")
		tb.AddRow("βw (wireless)", betaW, "exact", "")
		tb.AddRow("βu (unique)", betaU, "exact", "Obs 2.1: β ≥ βw ≥ βu")
		tb.AddRow("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), beta), "formula",
			"βw = Ω(β/log 2·min{∆/β, ∆β})")
	} else {
		est := expansion.EstimateOrdinary(g, alpha, trials, r)
		tb.AddRow("β (ordinary)", est.Bound, "upper bound", fmt.Sprintf("%d sets sampled", est.Sampled))
		estU := expansion.EstimateUnique(g, alpha, trials, r)
		tb.AddRow("βu (unique)", estU.Bound, "upper bound", "")
		sets := expansion.SampleSets(g, alpha, trials, r)
		lower, upper, _ := expansion.WirelessBounds(g, sets, func(b *graph.Bipartite) int {
			return spokesman.Best(b, 12, r).Unique
		})
		tb.AddRow("βw (wireless)", fmt.Sprintf("[%.4g, %.4g]", lower, upper), "bracket",
			"certified lower / sampled upper")
		tb.AddRow("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), est.Bound), "formula", "")
	}
	fmt.Print(tb.Text())

	if profile {
		maxK := int(alpha * float64(g.N()))
		if maxK < 1 {
			maxK = 1
		}
		tp, err := expansion.Profiles(g, maxK)
		if err != nil {
			return fmt.Errorf("profile unavailable: %w", err)
		}
		pt := table.New("Exact per-size profile (min over sets of each size)",
			"|S|", "β", "βw", "βu")
		for k := 1; k <= tp.MaxK; k++ {
			pt.AddRow(k, tp.Ordinary[k], tp.Wireless[k], tp.Unique[k])
		}
		pt.Note = "Observation 2.1 holds pointwise: β ≥ βw ≥ βu in every row."
		fmt.Print(pt.Text())
	}
	return nil
}
