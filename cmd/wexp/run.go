package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/rng"
	"wexp/internal/runopts"
	"wexp/internal/spokesman"
	"wexp/internal/table"
)

// Config is the full parameter set of one wexp invocation; main fills it
// from flags, tests construct it directly.
type Config struct {
	Family  string
	Size    int
	Load    string
	Alpha   float64
	Seed    uint64
	Trials  int
	Profile bool
	Budget  uint64
	Workers int
	Format  string
}

func defaultConfig() Config {
	return Config{
		Family: "hypercube",
		Size:   4,
		Alpha:  0.5,
		Seed:   1,
		Trials: 40,
		Format: "text",
	}
}

// measurement is one quantity row, feeding both the text table and the
// JSON document. Certificate states what the number is worth — exact
// proof, randomized certificate with explicit failure probability, or
// uncertified estimate — and is omitted on formula rows.
type measurement struct {
	Quantity    string                 `json:"quantity"`
	Value       string                 `json:"value"`
	Numeric     float64                `json:"numeric,omitempty"`
	Mode        string                 `json:"mode"`
	Notes       string                 `json:"notes,omitempty"`
	Certificate *expansion.Certificate `json:"certificate,omitempty"`
}

// profileRow is one row of the exact per-size expansion profile.
type profileRow struct {
	K        int     `json:"k"`
	Ordinary float64 `json:"beta"`
	Wireless float64 `json:"beta_w"`
	Unique   float64 `json:"beta_u"`
}

// wexpReport is the full JSON document.
type wexpReport struct {
	Family       string        `json:"family"`
	Size         int           `json:"size"`
	N            int           `json:"n"`
	M            int           `json:"m"`
	MaxDegree    int           `json:"max_degree"`
	AvgDegree    float64       `json:"avg_degree"`
	ArboricityLo int           `json:"arboricity_lo"`
	ArboricityHi int           `json:"arboricity_hi"`
	Alpha        float64       `json:"alpha"`
	Measurements []measurement `json:"measurements"`
	Profile      []profileRow  `json:"profile,omitempty"`
}

func run(cfg Config, w io.Writer) error {
	if cfg.Format != "text" && cfg.Format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", cfg.Format)
	}
	var g *graph.Graph
	family, size := cfg.Family, cfg.Size
	if cfg.Load != "" {
		f, err := os.Open(cfg.Load)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return err
		}
		family, size = cfg.Load, g.N()
	} else {
		var err error
		g, err = gen.FromFamily(gen.Family(family), size)
		if err != nil {
			return err
		}
	}
	r := rng.New(cfg.Seed)
	rep := wexpReport{
		Family: family, Size: size,
		N: g.N(), M: g.M(), MaxDegree: g.MaxDegree(), AvgDegree: g.AvgDegree(),
		Alpha: cfg.Alpha,
	}
	rep.ArboricityLo, rep.ArboricityHi = g.ArboricityEstimate()

	add := func(quantity string, numeric float64, value, mode, notes string, cert *expansion.Certificate) {
		if value == "" {
			value = fmt.Sprintf("%g", numeric)
		}
		rep.Measurements = append(rep.Measurements, measurement{
			Quantity: quantity, Value: value, Numeric: numeric, Mode: mode, Notes: notes,
			Certificate: cert,
		})
	}

	opt := expansion.Options{RunOpts: runopts.RunOpts{Budget: cfg.Budget, Workers: cfg.Workers}, Alpha: cfg.Alpha}
	maxK := expansion.MaxSetSize(g.N(), cfg.Alpha)
	if maxK < 1 {
		return fmt.Errorf("α=%g admits no nonempty set on n=%d", cfg.Alpha, g.N())
	}
	// Four-tier fallback gate, per quantity: (1) the exact branch-and-bound
	// engine, which charges the budget as it searches instead of refusing up
	// front — instances far beyond the flat-enumeration frontier still
	// complete when their search trees prune well; (2) on ErrBudget, the
	// randomized certified solver, whose answer carries an explicit failure
	// probability; (3) if the randomized plan is itself over budget (e.g.
	// the 2^k wireless oracle at large k), sampled estimates — a bracket for
	// βw, seeded upper bounds for β and βu. A blow-up on one quantity
	// degrades only that quantity.
	tryExact := func(obj expansion.Objective) (expansion.Result, bool, error) {
		res, err := expansion.Exact(g, obj, opt)
		if err == nil {
			return res, true, nil
		}
		if errors.Is(err, expansion.ErrBudget) {
			return expansion.Result{}, false, nil
		}
		return expansion.Result{}, false, err
	}
	ropt := expansion.RandOptions{
		RunOpts: runopts.RunOpts{Budget: cfg.Budget, Workers: cfg.Workers, Seed: cfg.Seed},
		Alpha:   cfg.Alpha,
	}
	tryCertified := func(obj expansion.Objective) (expansion.Result, bool, error) {
		res, err := expansion.Randomized(g, obj, ropt)
		if err == nil {
			return res, true, nil
		}
		if errors.Is(err, expansion.ErrBudget) {
			return expansion.Result{}, false, nil
		}
		return expansion.Result{}, false, err
	}
	searchNotes := func(res expansion.Result) string {
		return fmt.Sprintf("%d sets, %d pruned, %d visited", res.Sets, res.Pruned, res.Visited)
	}
	certNotes := func(res expansion.Result) string {
		c := res.Cert
		if c.Kind == expansion.CertExact {
			return fmt.Sprintf("exhaustive strata, %d sets", res.Sets)
		}
		return fmt.Sprintf("%d trials, failure ≤ %.3g, value ∈ [%.4g, %.4g]",
			c.Trials, c.FailureProb, c.CILow, c.CIHigh)
	}
	estimateCert := func() *expansion.Certificate {
		return &expansion.Certificate{Kind: expansion.CertEstimate}
	}

	rb, okB, err := tryExact(expansion.ObjOrdinary)
	if err != nil {
		return err
	}
	betaScale := 0.0
	// betaUpper is a sound upper bound on β whenever haveBetaUpper: exact or
	// randomized values are witnessed by a concrete set, so both qualify.
	betaUpper, haveBetaUpper := 0.0, false
	if okB {
		add("β (ordinary)", rb.Value, "", "exact", searchNotes(rb), &rb.Cert)
		betaScale, betaUpper, haveBetaUpper = rb.Value, rb.Value, true
	} else if rcb, okC, cerr := tryCertified(expansion.ObjOrdinary); cerr != nil {
		return cerr
	} else if okC {
		add("β (ordinary)", rcb.Value, "", "certified", certNotes(rcb), &rcb.Cert)
		betaScale, betaUpper, haveBetaUpper = rcb.Value, rcb.Value, true
	} else {
		est := expansion.EstimateOrdinary(g, cfg.Alpha, cfg.Trials, r)
		add("β (ordinary)", est.Bound, "", "upper bound",
			fmt.Sprintf("%d sets sampled", est.Sampled), estimateCert())
		betaScale = est.Bound
	}

	rw, okW, err := tryExact(expansion.ObjWireless)
	if err != nil {
		return err
	}
	if okW {
		add("βw (wireless)", rw.Value, "", "exact", searchNotes(rw), &rw.Cert)
	} else if rcw, okC, cerr := tryCertified(expansion.ObjWireless); cerr != nil {
		return cerr
	} else if okC {
		add("βw (wireless)", rcw.Value, "", "certified", certNotes(rcw), &rcw.Cert)
	} else {
		lower, upper := wirelessBracket(g, cfg.Alpha, cfg.Trials, r)
		notes := "family lower / sampled upper"
		if haveBetaUpper {
			// Obs 2.1 certifies βw ≤ β, so any sound upper bound on β
			// tightens the sampled upper bound; the lower bound holds only
			// over the sampled family.
			if betaUpper < upper {
				upper = betaUpper
			}
			if lower > upper {
				lower = upper
			}
			notes = "family lower / certified upper (βw search over budget)"
		}
		add("βw (wireless)", 0, fmt.Sprintf("[%.4g, %.4g]", lower, upper), "bracket", notes, estimateCert())
	}

	ru, okU, err := tryExact(expansion.ObjUnique)
	if err != nil {
		return err
	}
	if okU {
		add("βu (unique)", ru.Value, "", "exact", "Obs 2.1: β ≥ βw ≥ βu", &ru.Cert)
	} else if rcu, okC, cerr := tryCertified(expansion.ObjUnique); cerr != nil {
		return cerr
	} else if okC {
		add("βu (unique)", rcu.Value, "", "certified", certNotes(rcu), &rcu.Cert)
	} else {
		estU := expansion.EstimateUnique(g, cfg.Alpha, cfg.Trials, r)
		add("βu (unique)", estU.Bound, "", "upper bound", "", estimateCert())
	}

	scaleNotes := ""
	if okB && okW {
		scaleNotes = "βw = Ω(β/log 2·min{∆/β, ∆β})"
	}
	add("Thm 1.1 scale", bounds.Theorem11(g.MaxDegree(), betaScale), "", "formula", scaleNotes, nil)

	if cfg.Profile {
		tp, err := expansion.ProfilesOpts(g, maxK, opt)
		if err != nil {
			return fmt.Errorf("profile unavailable: %w", err)
		}
		for k := 1; k <= tp.MaxK; k++ {
			rep.Profile = append(rep.Profile, profileRow{
				K: k, Ordinary: tp.Ordinary[k], Wireless: tp.Wireless[k], Unique: tp.Unique[k],
			})
		}
	}

	if cfg.Format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "%s(%d): n=%d m=%d ∆=%d avg=%.2f arboricity∈[%d,%d]\n",
		family, size, g.N(), g.M(), g.MaxDegree(), g.AvgDegree(),
		rep.ArboricityLo, rep.ArboricityHi)
	tb := table.New("Expansion measurements", "quantity", "value", "mode", "notes")
	for _, m := range rep.Measurements {
		tb.AddRow(m.Quantity, m.Value, m.Mode, m.Notes)
	}
	if _, err := io.WriteString(w, tb.Text()); err != nil {
		return err
	}
	if cfg.Profile {
		pt := table.New("Exact per-size profile (min over sets of each size)",
			"|S|", "β", "βw", "βu")
		for _, row := range rep.Profile {
			pt.AddRow(row.K, row.Ordinary, row.Wireless, row.Unique)
		}
		pt.Note = "Observation 2.1 holds pointwise: β ≥ βw ≥ βu in every row."
		if _, err := io.WriteString(w, pt.Text()); err != nil {
			return err
		}
	}
	return nil
}

// wirelessBracket samples an adversarial set family and brackets βw over
// it with a certified spokesman lower bound per set.
func wirelessBracket(g *graph.Graph, alpha float64, trials int, r *rng.RNG) (lower, upper float64) {
	sets := expansion.SampleSets(g, alpha, trials, r)
	lower, upper, _ = expansion.WirelessBounds(g, sets, func(b *graph.Bipartite) int {
		return spokesman.Best(b, 12, r).Unique
	})
	return lower, upper
}
