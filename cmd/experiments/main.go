// Command experiments runs the reproduction harness (experiments E1–E12 of
// DESIGN.md) and prints each experiment's tables with its PASS/FAIL verdict.
//
// Usage:
//
//	experiments                      run everything, full parameter grids
//	experiments -quick               reduced grids (seconds)
//	experiments -only E5,E9          a subset
//	experiments -markdown > out.md   Markdown (EXPERIMENTS.md is built this way)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wexp/internal/experiments"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced parameter grids")
		seed     = flag.Uint64("seed", 20180220, "experiment RNG seed")
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		markdown = flag.Bool("markdown", false, "emit Markdown instead of text")
		csv      = flag.Bool("csv", false, "emit raw CSV tables instead of text")
		trials   = flag.Int("trials", 0, "override per-point trial count (0 = default)")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials}

	entries := experiments.All
	if *only != "" {
		var sel []experiments.Entry
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(2)
			}
			sel = append(sel, e)
		}
		entries = sel
	}

	failures := 0
	for _, e := range entries {
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *markdown:
			fmt.Println(res.Markdown())
		case *csv:
			for _, tbl := range res.Tables {
				fmt.Printf("# %s / %s\n%s\n", res.ID, tbl.Title, tbl.CSV())
			}
		default:
			fmt.Println(res.Text())
		}
		if !res.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
