// Command experiments runs the reproduction harness (experiments E1–E14 of
// DESIGN.md) through the sharded job engine and prints each experiment's
// tables with its PASS/FAIL verdict.
//
// Usage:
//
//	experiments                       run everything, full parameter grids
//	experiments -quick                reduced grids (seconds)
//	experiments -only E5,E9           a subset
//	experiments -workers 8            shard worker-pool width (output identical)
//	experiments -out artifacts/       also emit JSON artifacts + MANIFEST.json
//	experiments -resume artifacts/    resume an interrupted -out run (skips
//	                                  shards whose checkpoints match)
//	experiments -format json          print the run manifest as JSON
//	experiments -format markdown      Markdown (EXPERIMENTS.md is built this way)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	cfg := defaultConfig()
	flag.BoolVar(&cfg.Quick, "quick", cfg.Quick, "reduced parameter grids")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "experiment RNG seed")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "override per-point trial count (0 = default)")
	flag.StringVar(&cfg.Only, "only", cfg.Only, "comma-separated experiment ids (default: all)")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "shard worker-pool width (0 = GOMAXPROCS; results identical at any width)")
	flag.StringVar(&cfg.Out, "out", cfg.Out, "directory for JSON artifacts, checkpoints and MANIFEST.json")
	flag.StringVar(&cfg.Resume, "resume", cfg.Resume, "resume an interrupted run from this output directory")
	flag.StringVar(&cfg.Format, "format", cfg.Format, "output format: table, markdown, csv or json")
	flag.Parse()

	rep, err := run(cfg, os.Stdout)
	if err != nil {
		// Registry errors already carry the package prefix.
		fmt.Fprintf(os.Stderr, "experiments: %s\n",
			strings.TrimPrefix(err.Error(), "experiments: "))
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2) // bad invocation
		}
		os.Exit(1) // runtime failure
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", rep.Failures)
		os.Exit(1)
	}
}
