package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden artifacts under testdata/")

func TestRunTableOutput(t *testing.T) {
	cfg := defaultConfig()
	cfg.Quick = true
	cfg.Only = "E2"
	var buf bytes.Buffer
	rep, err := run(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("failures: %d", rep.Failures)
	}
	out := buf.String()
	for _, want := range []string{"E2", "Gbad measurements", "RESULT: PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownIDAndFormat(t *testing.T) {
	cfg := defaultConfig()
	cfg.Only = "E99"
	if _, err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown id accepted")
	}
	cfg = defaultConfig()
	cfg.Format = "yaml"
	if _, err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestGoldenArtifacts pins the byte-exact artifacts of the CI smoke subset
// (E1, E5, E9 at quick grids): any unintentional change to experiment
// numerics, the artifact schema, or engine determinism shows up as a diff.
// Regenerate intentionally with: go test ./cmd/experiments -update
func TestGoldenArtifacts(t *testing.T) {
	out := t.TempDir()
	cfg := defaultConfig()
	cfg.Quick = true
	cfg.Only = "E1,E5,E9"
	cfg.Workers = 4
	cfg.Out = out
	cfg.Format = "json"
	var buf bytes.Buffer
	rep, err := run(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("failures: %d", rep.Failures)
	}
	if !strings.Contains(buf.String(), "wexp-experiments/manifest-v1") {
		t.Fatalf("json output is not the manifest:\n%s", buf.String())
	}

	files := []string{"E1.json", "E5.json", "E9.json", "MANIFEST.json"}
	goldenDir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range files {
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join(goldenDir, name)
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run `go test ./cmd/experiments -update`): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from golden; inspect with a JSON diff or regenerate via -update", name)
		}
	}
}

// TestRunResumeCLISemantics checks the CLI contract that -resume reuses a
// previous -out directory's checkpoints and reproduces its artifacts.
func TestRunResumeCLISemantics(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.Quick = true
	cfg.Only = "E2"
	cfg.Out = dir
	if _, err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "E2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoints", "E2")); err != nil {
		t.Fatalf("checkpoints not written under -out: %v", err)
	}

	cfg.Out = t.TempDir() // a *different* -out alongside -resume must be rejected
	cfg.Resume = dir
	if _, err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("conflicting -out and -resume accepted")
	}
	cfg.Out = ""
	if _, err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(dir, "E2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("-resume produced different artifact bytes than the original -out run")
	}
}
