package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"wexp/internal/experiments"
	"wexp/internal/runopts"
)

// usageError marks a bad invocation (unknown id/format, conflicting
// flags); main exits 2 for it and 1 for runtime failures.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// Config is the full parameter set of one experiments invocation; main
// fills it from flags, tests construct it directly.
type Config struct {
	Quick   bool
	Seed    uint64
	Trials  int
	Only    string // comma-separated experiment ids ("" = all)
	Workers int
	Out     string // artifact output directory ("" = stdout only)
	Resume  string // resume directory (implies -out <dir>, reuses checkpoints)
	Format  string // table | markdown | csv | json
}

func defaultConfig() Config {
	return Config{Seed: 20180220, Format: "table"}
}

// run executes the selected experiments through the sharded job engine and
// renders them to w. It returns the engine report so callers can
// distinguish experiment failures (report.Failures > 0) from hard errors.
func run(cfg Config, w io.Writer) (*experiments.RunReport, error) {
	switch cfg.Format {
	case "table", "markdown", "csv", "json":
	default:
		return nil, usageError{fmt.Errorf("unknown format %q (want table, markdown, csv or json)", cfg.Format)}
	}

	specs := experiments.All
	if cfg.Only != "" {
		var ids []string
		for _, id := range strings.Split(cfg.Only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		var err error
		specs, err = experiments.Select(ids)
		if err != nil {
			return nil, usageError{err}
		}
	}

	outDir := cfg.Out
	resume := false
	if cfg.Resume != "" {
		if cfg.Out != "" && cfg.Out != cfg.Resume {
			return nil, usageError{fmt.Errorf("-out %q conflicts with -resume %q (a resumed run writes into the resume directory)", cfg.Out, cfg.Resume)}
		}
		outDir = cfg.Resume
		resume = true
	}
	opt := experiments.Options{
		RunOpts: runopts.RunOpts{Workers: cfg.Workers},
		OutDir:  outDir,
		Resume:  resume,
	}
	if outDir != "" {
		// Checkpoints ride inside the output directory, so `-out dir`
		// followed by `-resume dir` picks up exactly where a kill left off.
		opt.CheckpointDir = filepath.Join(outDir, "checkpoints")
	}

	ecfg := experiments.Config{Seed: cfg.Seed, Quick: cfg.Quick, Trials: cfg.Trials}
	rep, err := experiments.Run(specs, ecfg, opt)
	if err != nil {
		return rep, err
	}

	switch cfg.Format {
	case "json":
		// The manifest is the machine-readable run summary; the artifacts
		// themselves live under -out (or inline via the facade).
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.Manifest); err != nil {
			return rep, err
		}
	case "markdown":
		for _, res := range rep.Results {
			fmt.Fprintln(w, res.Markdown())
		}
	case "csv":
		for _, res := range rep.Results {
			for _, tbl := range res.Tables {
				fmt.Fprintf(w, "# %s / %s\n%s\n", res.ID, tbl.Title, tbl.CSV())
			}
		}
	default: // table
		for _, res := range rep.Results {
			fmt.Fprintln(w, res.Text())
		}
	}
	return rep, nil
}
