module wexp

go 1.24
