package wexp

import (
	"wexp/internal/badgraph"
	"wexp/internal/bounds"
	"wexp/internal/expansion"
	"wexp/internal/experiments"
	"wexp/internal/gen"
	"wexp/internal/graph"
	"wexp/internal/radio"
	"wexp/internal/rng"
	"wexp/internal/spokesman"
)

// Core types, re-exported so callers never import internal packages.
type (
	// Graph is an immutable simple undirected graph in CSR form.
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Bipartite is the paper's framework graph GS = (S, N, E).
	Bipartite = graph.Bipartite
	// BipartiteBuilder accumulates edges for a Bipartite.
	BipartiteBuilder = graph.BipartiteBuilder
	// RNG is the deterministic splittable generator used everywhere.
	RNG = rng.RNG
	// Selection is a spokesman set with its certified unique cover.
	Selection = spokesman.Selection
	// ExpansionResult reports an exact expansion value with its witness.
	ExpansionResult = expansion.Result
	// BroadcastResult summarizes one radio broadcast execution.
	BroadcastResult = radio.RunResult
	// Protocol decides which informed vertices transmit each round.
	Protocol = radio.Protocol
	// ExperimentConfig controls a reproduction experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentResult is the outcome of a reproduction experiment.
	ExperimentResult = experiments.Result
	// ExperimentOptions configures the sharded experiment engine: worker
	// count, artifact output directory, checkpoint/resume behavior.
	ExperimentOptions = experiments.Options
	// ExperimentArtifact is the versioned JSON record of one experiment
	// run (inputs, per-shard results, summary tables, verdict).
	ExperimentArtifact = experiments.Artifact
	// ExperimentRunReport aggregates a multi-experiment engine run:
	// results, artifacts, and the checksummed manifest.
	ExperimentRunReport = experiments.RunReport
)

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewBipartiteBuilder returns a builder for a bipartite graph with sides of
// size s and n.
func NewBipartiteBuilder(s, n int) *BipartiteBuilder {
	return graph.NewBipartiteBuilder(s, n)
}

// InducedBipartite extracts the framework graph GS = (S, Γ⁻(S)) of Section
// 4.1 from g: all edges between the vertex set S and its external
// neighborhood. The second return value maps N-side indices back to
// g-vertex ids.
func InducedBipartite(g *Graph, S []int) (*Bipartite, []int) {
	return graph.InducedBipartite(g, S)
}

// --- Generators -----------------------------------------------------------

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return gen.Complete(n) }

// Cycle returns the n-cycle.
func Cycle(n int) *Graph { return gen.Cycle(n) }

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph { return gen.Hypercube(d) }

// Grid returns the rows×cols planar grid (arboricity ≤ 2).
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// Torus returns the rows×cols 4-regular torus.
func Torus(rows, cols int) *Graph { return gen.Torus(rows, cols) }

// CompleteBinaryTree returns the complete binary tree with the given
// number of levels.
func CompleteBinaryTree(levels int) *Graph { return gen.CompleteBinaryTree(levels) }

// CPlus returns the Introduction's motivating example: K_n plus a source s0
// (vertex 0) attached to two clique vertices.
func CPlus(n int) *Graph { return gen.CPlus(n) }

// Path returns the path graph on n vertices.
func Path(n int) *Graph { return gen.Path(n) }

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph { return gen.Star(n) }

// Petersen returns the Petersen graph (3-regular, λ2 = 1).
func Petersen() *Graph { return gen.Petersen() }

// CompleteBipartite returns K_{a,b} as a general graph.
func CompleteBipartite(a, b int) *Graph { return gen.CompleteBipartiteGraph(a, b) }

// Wheel returns the wheel graph: an n-cycle plus a hub adjacent to all.
func Wheel(n int) *Graph { return gen.Wheel(n) }

// Barbell returns two k-cliques joined by a single edge (a bad expander).
func Barbell(k int) *Graph { return gen.Barbell(k) }

// Lollipop returns a k-clique attached to a p-vertex path.
func Lollipop(k, p int) *Graph { return gen.LollipopChain(k, p) }

// RandomTree returns a random recursive tree on n vertices (arboricity 1).
func RandomTree(n int, r *RNG) *Graph { return gen.RandomTree(n, r) }

// Margulis returns the explicit Margulis–Gabber–Galil expander on Z_m×Z_m.
func Margulis(m int) *Graph { return gen.Margulis(m) }

// RandomRegular returns a random d-regular simple graph.
func RandomRegular(n, d int, r *RNG) (*Graph, error) { return gen.RandomRegular(n, d, r) }

// ErdosRenyi returns G(n, p).
func ErdosRenyi(n int, p float64, r *RNG) *Graph { return gen.ErdosRenyi(n, p, r) }

// RandomBipartite returns a random bipartite framework graph with no
// isolated vertices.
func RandomBipartite(s, n int, p float64, r *RNG) *Bipartite {
	return gen.RandomBipartite(s, n, p, r)
}

// RandomBipartiteRegular returns a bipartite graph whose S side is
// d-regular.
func RandomBipartiteRegular(s, n, d int, r *RNG) (*Bipartite, error) {
	return gen.RandomBipartiteRegular(s, n, d, r)
}

// --- Expansion measurement --------------------------------------------------

// OrdinaryExpansion computes β(G) exactly: the minimum of |Γ⁻(S)|/|S| over
// nonempty sets with |S| ≤ α·n, enumerated by cardinality under the
// default work budget (any n is accepted as long as Σ C(n,k) fits; use
// OrdinaryExpansionOpts to set the budget explicitly).
func OrdinaryExpansion(g *Graph, alpha float64) (ExpansionResult, error) {
	return expansion.ExactOrdinary(g, alpha)
}

// UniqueExpansion computes βu(G) exactly under the default work budget.
func UniqueExpansion(g *Graph, alpha float64) (ExpansionResult, error) {
	return expansion.ExactUnique(g, alpha)
}

// WirelessExpansion computes βw(G) exactly under the default work budget:
// for every S the inner maximum over S' ⊆ S of |Γ¹_S(S')|/|S| is taken,
// then minimized over S (cost Σ C(n,k)·2^k work units).
func WirelessExpansion(g *Graph, alpha float64) (ExpansionResult, error) {
	return expansion.ExactWireless(g, alpha)
}

// ExpansionOrdering returns (β, βw, βu) exactly, the chain of
// Observation 2.1.
func ExpansionOrdering(g *Graph, alpha float64) (beta, betaW, betaU float64, err error) {
	return expansion.Ordering(g, alpha)
}

// Lambda2 estimates the second-largest adjacency eigenvalue of a regular
// graph (Lemma 3.1's λ).
func Lambda2(g *Graph, r *RNG) (float64, error) {
	res, err := expansion.Lambda2Regular(g, r)
	return res.Lambda, err
}

// WirelessCertificate returns, for a concrete vertex set S of g, a
// certified spokesman selection over the induced framework graph: the
// returned Selection's Unique field lower-bounds max_{S'⊆S} |Γ¹_S(S')|, and
// the selected subset is reported as g-vertex ids.
func WirelessCertificate(g *Graph, S []int, trials int, r *RNG) (Selection, []int) {
	b, _ := InducedBipartite(g, S)
	sel := spokesman.Best(b, trials, r)
	verts := make([]int, len(sel.Subset))
	for i, u := range sel.Subset {
		verts[i] = S[u]
	}
	return sel, verts
}

// --- Spokesman election -----------------------------------------------------

// SpokesmanExhaustive returns the exact optimal spokesman set (|S| ≤ 24).
func SpokesmanExhaustive(b *Bipartite) (Selection, error) { return spokesman.Exhaustive(b) }

// SpokesmanDecay runs the Lemma 4.2/4.3 decay sampler.
func SpokesmanDecay(b *Bipartite, trials int, r *RNG) Selection {
	return spokesman.Decay(b, trials, r)
}

// SpokesmanGreedy runs the deterministic Lemma A.1 procedure
// (guarantee ≥ |N|/∆S).
func SpokesmanGreedy(b *Bipartite) Selection { return spokesman.GreedyUnique(b) }

// SpokesmanPartition runs Procedure Partition per Lemma A.3
// (guarantee ≥ |N|/(8δ)).
func SpokesmanPartition(b *Bipartite) Selection { return spokesman.PartitionSelect(b) }

// SpokesmanRecursive runs the near-optimal recursive selector of Lemma A.13
// (guarantee ≥ |N|/(9·log 2δ)).
func SpokesmanRecursive(b *Bipartite) Selection { return spokesman.PartitionRecursive(b) }

// SpokesmanBest runs the full portfolio and returns the best certified
// selection.
func SpokesmanBest(b *Bipartite, trials int, r *RNG) Selection {
	return spokesman.Best(b, trials, r)
}

// --- Worst-case constructions ------------------------------------------------

// CoreGraph builds the Lemma 4.4 binary-tree core graph on s leaves
// (s a power of two) and returns its bipartite form.
func CoreGraph(s int) (*Bipartite, error) {
	c, err := badgraph.NewCore(s)
	if err != nil {
		return nil, err
	}
	return c.B, nil
}

// GBad builds the Lemma 3.3 construction with unique expansion exactly
// 2β−∆.
func GBad(s, delta, beta int) (*Bipartite, error) {
	g, err := badgraph.NewGBad(s, delta, beta)
	if err != nil {
		return nil, err
	}
	return g.B, nil
}

// GeneralizedCore builds the Lemma 4.6 core with degree budget ∆* and
// target expansion β*, returning the graph and its achieved expansion.
func GeneralizedCore(deltaStar int, betaStar float64) (*Bipartite, float64, error) {
	e, err := badgraph.GeneralizedCore(deltaStar, betaStar)
	if err != nil {
		return nil, 0, err
	}
	return e.B, e.Beta(), nil
}

// WorstCaseExpander plugs a generalized core onto the expander g (Section
// 4.3.3), returning the combined graph and the witness set S* whose
// wireless expansion is provably small.
func WorstCaseExpander(g *Graph, beta, eps float64, r *RNG) (*Graph, []int, error) {
	wc, err := badgraph.NewWorstCase(g, beta, eps, r)
	if err != nil {
		return nil, nil, err
	}
	return wc.G, wc.WitnessSet(), nil
}

// BroadcastChain builds the Section 5 lower-bound graph: `hops` chained
// core copies behind a root. Returns the graph and the root vertex.
func BroadcastChain(hops, s int, r *RNG) (*Graph, int, error) {
	ch, err := badgraph.NewChain(hops, s, r)
	if err != nil {
		return nil, 0, err
	}
	return ch.G, ch.Root, nil
}

// --- Radio broadcast ---------------------------------------------------------

// Broadcast runs a protocol from the source until completion or maxRounds.
func Broadcast(g *Graph, source int, p Protocol, maxRounds int) (BroadcastResult, error) {
	return radio.Run(g, source, p, maxRounds)
}

// ProtocolFactory creates a fresh protocol instance for one Monte-Carlo
// trial from the trial's private random stream.
type ProtocolFactory = radio.Factory

// MonteCarloOptions configures BroadcastMonteCarlo (worker-pool width,
// seed, round budget, per-round trace depth, receive-rule model, memory
// model). Results are bit-identical at every worker count.
type MonteCarloOptions = radio.Options

// RadioMemModel is the explicit memory model selecting the engine's
// adjacency strategy: dense bit rows when they fit the budget, sparse
// CSR traversal above it (the path that makes n ≥ 10⁶ graphs run in
// O(n + m) memory per trial). The zero value selects the defaults; set it
// via MonteCarloOptions.Mem. The strategy never changes results — only
// memory and speed.
type RadioMemModel = radio.MemModel

// RadioModel is the pluggable per-round receive rule: the unit-disk
// collision rule of the paper, SINR/physical interference, probabilistic
// arc fading, multi-message broadcast, or adversarial jamming. Install one
// via MonteCarloOptions.Model; nil keeps the historical unit-disk path.
type RadioModel = radio.Model

// Receive-rule model types, constructible directly when the spec-string
// form of ParseRadioModel is too coarse.
type (
	// UnitDiskModel is the paper's rule: a silent vertex receives iff
	// exactly one neighbor transmits.
	UnitDiskModel = radio.UnitDisk
	// SINRModel is physical interference with distance-free
	// degree-weighted power and a deterministic threshold.
	SINRModel = radio.SINR
	// FadingModel erases each delivered arc independently with
	// probability P from a pre-split per-round stream.
	FadingModel = radio.Fading
	// MultiMessageModel broadcasts M messages concurrently; completion
	// requires every vertex to hold all of them.
	MultiMessageModel = radio.MultiMessage
	// JamModel silences the Budget most valuable receivers each round.
	JamModel = radio.Jam
)

// ParseRadioModel parses a receive-rule spec such as "unit-disk", "sinr",
// "fading:0.3", "multi:4", or "jam:2,frontier" into a RadioModel with
// canonical parameter defaults.
func ParseRadioModel(spec string) (RadioModel, error) { return radio.ParseModel(spec) }

// MonteCarloResult aggregates a Monte-Carlo broadcast run: per-trial
// records, round-count summary and completion histogram, collision and
// transmission totals, and per-round informed-count quantiles.
type MonteCarloResult = radio.Result

// BroadcastMonteCarlo fans independent seeded broadcast trials of the
// protocol over a deterministic worker pool and aggregates per-round and
// per-trial statistics. The adjacency bitset rows are built once and
// shared by all trials.
//
// Deprecated: use BroadcastMonteCarloWith, which takes the cancellation
// context as an explicit first parameter instead of the opt.Ctx field.
func BroadcastMonteCarlo(g *Graph, source int, factory ProtocolFactory, trials int, opt MonteCarloOptions) (*MonteCarloResult, error) {
	return radio.MonteCarlo(g, source, factory, trials, opt)
}

// FloodProtocol returns the naive everyone-transmits protocol (deadlocks on
// C⁺).
func FloodProtocol() Protocol { return radio.Flood{} }

// DecayProtocol returns the Bar-Yehuda–Goldreich–Itai decay protocol.
func DecayProtocol(r *RNG) Protocol { return &radio.Decay{R: r} }

// RoundRobinProtocol returns the trivial collision-free protocol.
func RoundRobinProtocol() Protocol { return radio.RoundRobin{} }

// SpokesmanProtocol returns the centralized schedule that transmits a
// spokesman subset of the frontier each round — wireless expansion made
// operational.
func SpokesmanProtocol(r *RNG, trials int) Protocol {
	return &radio.Spokesman{R: r, Trials: trials}
}

// --- Paper bounds -----------------------------------------------------------

// Theorem11Bound returns the positive result's scale
// β/log(2·min{∆/β, ∆β}).
func Theorem11Bound(delta int, beta float64) float64 { return bounds.Theorem11(delta, beta) }

// UniqueLowerBound returns Lemma 3.2's floor 2β−∆ on unique expansion.
func UniqueLowerBound(delta int, beta float64) float64 { return bounds.Lemma32(delta, beta) }

// BroadcastLowerBound returns the Section 5 scale D·log2(n/D).
func BroadcastLowerBound(diameter, n int) float64 { return bounds.BroadcastLower(diameter, n) }

// --- Experiments -------------------------------------------------------------

// RunExperiment executes one reproduction experiment (E1–E14).
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(cfg)
}

// RunAllExperiments executes the full E1–E14 suite.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentResult, error) {
	return experiments.RunAll(cfg)
}

// RunExperiments executes the selected experiments (all of them when ids is
// empty) through the sharded job engine: each experiment's parameter grid
// is decomposed into deterministic shards, fanned over opt.Workers workers
// with pre-split RNG streams, and merged in index order — the report's
// artifacts are bit-identical at every worker count. When opt.OutDir is
// set, one JSON artifact per experiment plus a checksummed MANIFEST.json
// are written there; with opt.CheckpointDir and opt.Resume, an interrupted
// run continues from its completed shards.
//
// Deprecated: use RunExperimentsWith, which takes the cancellation
// context as an explicit first parameter instead of the opt.Ctx field.
func RunExperiments(ids []string, cfg ExperimentConfig, opt ExperimentOptions) (*ExperimentRunReport, error) {
	return runExperiments(ids, cfg, opt)
}

// ExperimentIDs lists the available experiment ids in index order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.All {
		out = append(out, e.ID)
	}
	return out
}

type unknownExperimentError string

func (e unknownExperimentError) Error() string {
	return "wexp: unknown experiment " + string(e)
}

func errUnknownExperiment(id string) error { return unknownExperimentError(id) }
