package wexp

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build a graph, measure all three
	// expansions, confirm the ordering of Observation 2.1.
	g := CPlus(8)
	beta, betaW, betaU, err := ExpansionOrdering(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(beta >= betaW && betaW >= betaU) {
		t.Fatalf("ordering violated: %g %g %g", beta, betaW, betaU)
	}
	if betaU != 0 {
		t.Fatalf("C⁺ unique expansion = %g, want 0", betaU)
	}
	if betaW <= 0 {
		t.Fatalf("C⁺ wireless expansion = %g, want > 0", betaW)
	}
}

func TestPublicGenerators(t *testing.T) {
	r := NewRNG(1)
	if Complete(5).M() != 10 {
		t.Fatal("Complete")
	}
	if Cycle(5).N() != 5 {
		t.Fatal("Cycle")
	}
	if Hypercube(4).N() != 16 {
		t.Fatal("Hypercube")
	}
	if Grid(2, 3).N() != 6 {
		t.Fatal("Grid")
	}
	if Torus(3, 3).N() != 9 {
		t.Fatal("Torus")
	}
	if CompleteBinaryTree(3).N() != 7 {
		t.Fatal("Tree")
	}
	if Margulis(4).N() != 16 {
		t.Fatal("Margulis")
	}
	if g, err := RandomRegular(10, 3, r); err != nil || g.N() != 10 {
		t.Fatal("RandomRegular")
	}
	if ErdosRenyi(10, 0.5, r).N() != 10 {
		t.Fatal("ErdosRenyi")
	}
	if RandomBipartite(4, 5, 0.5, r).NS() != 4 {
		t.Fatal("RandomBipartite")
	}
	if b, err := RandomBipartiteRegular(4, 6, 2, r); err != nil || b.NS() != 4 {
		t.Fatal("RandomBipartiteRegular")
	}
}

func TestPublicBuilders(t *testing.T) {
	b := NewGraphBuilder(3)
	b.MustAddEdge(0, 1)
	if b.Build().M() != 1 {
		t.Fatal("GraphBuilder")
	}
	bb := NewBipartiteBuilder(2, 2)
	bb.MustAddEdge(0, 0)
	if bb.Build().M() != 1 {
		t.Fatal("BipartiteBuilder")
	}
}

func TestWirelessCertificateMapsVertices(t *testing.T) {
	g := CPlus(6)
	r := NewRNG(2)
	S := []int{0, 1, 2} // s0, x, y — the motivating example
	sel, verts := WirelessCertificate(g, S, 8, r)
	if sel.Unique <= 0 {
		t.Fatalf("certificate unique = %d", sel.Unique)
	}
	if len(verts) != len(sel.Subset) {
		t.Fatal("vertex mapping length mismatch")
	}
	for _, v := range verts {
		if v != 0 && v != 1 && v != 2 {
			t.Fatalf("certificate vertex %d not in S", v)
		}
	}
}

func TestPublicSpokesmanPortfolio(t *testing.T) {
	r := NewRNG(3)
	b := RandomBipartite(10, 14, 0.25, r)
	opt, err := SpokesmanExhaustive(b)
	if err != nil {
		t.Fatal(err)
	}
	for name, sel := range map[string]Selection{
		"decay":     SpokesmanDecay(b, 8, r),
		"greedy":    SpokesmanGreedy(b),
		"partition": SpokesmanPartition(b),
		"recursive": SpokesmanRecursive(b),
		"best":      SpokesmanBest(b, 8, r),
	} {
		if sel.Unique > opt.Unique {
			t.Fatalf("%s beat the optimum", name)
		}
		if sel.Unique <= 0 {
			t.Fatalf("%s returned nothing", name)
		}
	}
}

func TestPublicConstructions(t *testing.T) {
	if b, err := CoreGraph(8); err != nil || b.NS() != 8 || b.NN() != 32 {
		t.Fatal("CoreGraph")
	}
	if _, err := CoreGraph(3); err == nil {
		t.Fatal("CoreGraph should reject non-powers of two")
	}
	if b, err := GBad(8, 6, 4); err != nil || b.NS() != 8 {
		t.Fatal("GBad")
	}
	b, achieved, err := GeneralizedCore(64, 4)
	if err != nil || b == nil || achieved <= 0 {
		t.Fatal("GeneralizedCore")
	}
	r := NewRNG(4)
	g, witness, err := WorstCaseExpander(Complete(128), 1.0, 0.3, r)
	if err != nil || g.N() <= 128 || len(witness) == 0 {
		t.Fatalf("WorstCaseExpander: %v", err)
	}
	chain, root, err := BroadcastChain(3, 8, r)
	if err != nil || root != 0 || !chain.Connected() {
		t.Fatal("BroadcastChain")
	}
}

func TestPublicBroadcast(t *testing.T) {
	g := CPlus(10)
	r := NewRNG(5)
	flood, err := Broadcast(g, 0, FloodProtocol(), 50)
	if err != nil || flood.Completed {
		t.Fatal("flood should deadlock on C⁺")
	}
	spoke, err := Broadcast(g, 0, SpokesmanProtocol(r, 4), 100)
	if err != nil || !spoke.Completed {
		t.Fatal("spokesman should complete")
	}
	decay, err := Broadcast(g, 0, DecayProtocol(r), 10000)
	if err != nil || !decay.Completed {
		t.Fatal("decay should complete")
	}
	rr, err := Broadcast(g, 0, RoundRobinProtocol(), 10000)
	if err != nil || !rr.Completed || rr.Collisions != 0 {
		t.Fatal("round robin should complete without collisions")
	}
}

func TestPublicBounds(t *testing.T) {
	if Theorem11Bound(64, 4) <= 0 {
		t.Fatal("Theorem11Bound")
	}
	if UniqueLowerBound(6, 4) != 2 {
		t.Fatal("UniqueLowerBound")
	}
	if BroadcastLowerBound(8, 128) != 32 {
		t.Fatal("BroadcastLowerBound")
	}
}

func TestPublicLambda2(t *testing.T) {
	l, err := Lambda2(Complete(8), NewRNG(6))
	if err != nil || math.Abs(l-(-1)) > 1e-6 {
		t.Fatalf("λ2(K8) = %g, %v", l, err)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 || ids[0] != "E1" {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	res, err := RunExperiment("E2", ExperimentConfig{Seed: 1, Quick: true})
	if err != nil || !res.Pass {
		t.Fatalf("E2: %v", err)
	}
	if _, err := RunExperiment("E99", ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicRunExperimentsEngine(t *testing.T) {
	out := t.TempDir()
	rep, err := RunExperimentsWith(context.Background(), []string{"E2", "E5"},
		ExperimentConfig{Seed: 1, Quick: true},
		ExperimentOptions{RunOpts: RunOpts{Workers: 2}, OutDir: out})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || len(rep.Artifacts) != 2 {
		t.Fatalf("report: failures=%d artifacts=%d", rep.Failures, len(rep.Artifacts))
	}
	if len(rep.Manifest.Experiments) != 2 || rep.Manifest.Experiments[0].SHA256 == "" {
		t.Fatalf("manifest incomplete: %+v", rep.Manifest)
	}
	for _, name := range []string{"E2.json", "E5.json", "MANIFEST.json"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Fatalf("artifact %s not written: %v", name, err)
		}
	}
	if _, err := RunExperiments([]string{"E99"}, ExperimentConfig{}, ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted by RunExperiments")
	}
}

func TestExactExpansionValuesOnKnownGraphs(t *testing.T) {
	// K8 with α = 1/2: β = 1.
	res, err := OrdinaryExpansion(Complete(8), 0.5)
	if err != nil || res.Value != 1 {
		t.Fatalf("β(K8) = %g", res.Value)
	}
	// Unique expansion of K8 at α = 1/2: sets of size ≥ 2 have no unique
	// neighbors... every outside vertex sees all of S. βu = 0.
	ru, err := UniqueExpansion(Complete(8), 0.5)
	if err != nil || ru.Value != 0 {
		t.Fatalf("βu(K8) = %g", ru.Value)
	}
	// Wireless: pick a singleton subset of any S — it uniquely covers all
	// outside vertices, so βw = max ... min over S of (n−|S|)/|S| at
	// |S| = 4: (8−4)/4 = 1.
	rw, err := WirelessExpansion(Complete(8), 0.5)
	if err != nil || rw.Value != 1 {
		t.Fatalf("βw(K8) = %g", rw.Value)
	}
}
