package wexp

// integration_test.go exercises the full public API as a downstream user
// would: reproduce the paper's storyline end-to-end — motivate (C⁺),
// measure (expansion ordering), apply the positive result (certificates on
// an expander), build the negative result (worst case), and run the
// broadcast application — all through the wexp facade only.

import (
	"math"
	"testing"
)

func TestEndToEndPaperStoryline(t *testing.T) {
	r := NewRNG(1802_07177)

	// 1. Motivation: C⁺ separates unique from wireless expansion.
	cp := CPlus(8)
	beta, betaW, betaU, err := ExpansionOrdering(cp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if betaU != 0 || betaW != beta {
		t.Fatalf("C⁺ separation wrong: β=%g βw=%g βu=%g", beta, betaW, betaU)
	}

	// 2. Positive result: on an explicit expander, every sampled set has a
	// certificate worth a constant fraction of Theorem 1.1's scale.
	mg := Margulis(12)
	scale := Theorem11Bound(mg.MaxDegree(), 1.0)
	if scale <= 0 {
		t.Fatal("degenerate scale")
	}
	for trial := 0; trial < 5; trial++ {
		k := 4 + trial*4
		S := make([]int, 0, k)
		seen := map[int]bool{}
		for len(S) < k {
			v := r.Intn(mg.N())
			if !seen[v] {
				seen[v] = true
				S = append(S, v)
			}
		}
		sel, verts := WirelessCertificate(mg, S, 8, r)
		if sel.Unique <= 0 || len(verts) == 0 {
			t.Fatalf("no certificate for |S|=%d", k)
		}
	}

	// 3. Negative result: the plugged worst case keeps ordinary expansion
	// but caps the witness's wireless expansion.
	base := Complete(256)
	g, witness, err := WorstCaseExpander(base, 1.0, 0.4, r)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := InducedBipartite(g, witness)
	ord := float64(b.NN()) / float64(len(witness))
	cert := SpokesmanBestImproved(b, 8, r)
	wUpper := float64(cert.Unique) / float64(len(witness))
	if !(wUpper < ord) {
		t.Fatalf("no separation: ord=%g wireless≤%g", ord, wUpper)
	}

	// 4. Application: broadcast lower bound scaling on the chain.
	chain, root, err := BroadcastChain(4, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(chain, root, DecayProtocol(r), 1_000_000)
	if err != nil || !res.Completed {
		t.Fatal("chain broadcast failed")
	}
	diam, _ := chain.Diameter()
	if lb := BroadcastLowerBound(diam, chain.N()); float64(res.Rounds) < lb/8 {
		t.Fatalf("rounds %d implausibly below scale %g", res.Rounds, lb)
	}

	// 5. Spectral side: Petersen's λ2 = 1 exactly, and the Lemma 3.1 bound
	// is consistent with its measured expansions.
	pt := Petersen()
	l2, err := Lambda2(pt, r)
	if err != nil || math.Abs(l2-1) > 1e-6 {
		t.Fatalf("λ2(Petersen) = %g", l2)
	}
}
