# Mirrors .github/workflows/ci.yml so `make check` locally is the same bar
# as CI.

GO ?= go

.PHONY: all build vet fmt-check test race check bench bench-full clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet fmt-check race

# One iteration of every benchmark: keeps the bench harness from rotting
# and rewrites BENCH_expansion.json (the expansion-engine perf record).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Full benchmark sweep with real timings.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

clean:
	$(GO) clean ./...
