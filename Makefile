# Mirrors .github/workflows/ci.yml so `make check` locally is the same bar
# as CI.

GO ?= go

.PHONY: all build vet fmt-check test race check cover fuzz-smoke bench bench-full clean

# Seed-baseline total coverage; CI fails below this (see ci.yml).
COVER_FLOOR ?= 85.0

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet fmt-check race

cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total%"; \
	if [ "$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { print (t+0 >= f+0) ? "ok" : "low" }')" != ok ]; then \
		echo "coverage $$total% fell below the floor $(COVER_FLOOR)%" >&2; exit 1; \
	fi

# Short fuzz runs of every fuzz target; same set as CI's fuzz-smoke job.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRadioStep -fuzztime=30s ./internal/radio
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzBuilder -fuzztime=15s ./internal/graph

# One iteration of every benchmark: keeps the bench harness from rotting
# and rewrites BENCH_expansion.json (the expansion-engine perf record).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Full benchmark sweep with real timings.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

clean:
	$(GO) clean ./...
