# Mirrors .github/workflows/ci.yml so `make check` locally is the same bar
# as CI.

GO ?= go

.PHONY: all build vet fmt-check test race check cover lint fuzz-smoke bench bench-full bench-gate bench-baseline bench-load experiments profile serve api clean

# Seed-baseline total coverage; CI fails below this (see ci.yml).
COVER_FLOOR ?= 85.0

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet fmt-check race

# Regenerate the exported-API golden (testdata/api/wexp.txt) after an
# intentional surface change; TestAPISurfaceGolden diffs against it.
api:
	UPDATE_API=1 $(GO) test -run TestAPISurfaceGolden .

cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total%"; \
	if [ "$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { print (t+0 >= f+0) ? "ok" : "low" }')" != ok ]; then \
		echo "coverage $$total% fell below the floor $(COVER_FLOOR)%" >&2; exit 1; \
	fi

# Static analysis + known-vulnerability scan, pinned so local runs and CI
# agree on the toolchain (`go run pkg@version` fetches nothing when the
# module cache already holds the version). Findings are fixed, not
# suppressed — the tree stays staticcheck-clean.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Short fuzz runs of every fuzz target; same set as CI's fuzz-smoke job.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRadioStep -fuzztime=30s ./internal/radio
	$(GO) test -run='^$$' -fuzz=FuzzRadioModels -fuzztime=30s ./internal/radio
	$(GO) test -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzBuilder -fuzztime=15s ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzExpansionKernels -fuzztime=20s ./internal/expansion
	$(GO) test -run='^$$' -fuzz=FuzzRandomizedCertificate -fuzztime=20s ./internal/expansion
	$(GO) test -run='^$$' -fuzz=FuzzWALDecode -fuzztime=15s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzPlace -fuzztime=15s ./internal/router

# One iteration of every benchmark: keeps the bench harness from rotting
# and rewrites BENCH_expansion.json (the expansion-engine perf record).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Full benchmark sweep with real timings.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Benchmark-regression gate: stash the committed BENCH_*.json baselines,
# re-run the benchmarks (which rewrite them), and compare with
# cmd/benchgate. Fails on any ns/op regression beyond BENCH_GATE_TOL; a
# shell trap restores the baselines afterwards — also when the bench or
# gate step fails or is interrupted — so the tree never keeps silently
# rewritten baselines.
# CI passes a wider tolerance (runner-to-runner variance); to refresh the
# baselines intentionally, run `make bench-baseline` and commit.
BENCH_GATE_TOL ?= 0.25
BENCH_GATE_TIME ?= 100ms
BENCH_BASELINE_TIME ?= 300ms
BENCH_BASELINE_DIR := artifacts/bench-baseline

bench-gate:
	@mkdir -p $(BENCH_BASELINE_DIR)
	@cp BENCH_expansion.json BENCH_radio.json BENCH_service.json BENCH_ingest.json $(BENCH_BASELINE_DIR)/
	@trap 'cp $(BENCH_BASELINE_DIR)/BENCH_expansion.json $(BENCH_BASELINE_DIR)/BENCH_radio.json $(BENCH_BASELINE_DIR)/BENCH_service.json $(BENCH_BASELINE_DIR)/BENCH_ingest.json .' EXIT INT TERM; \
	$(GO) test -bench=. -benchtime=$(BENCH_GATE_TIME) -run='^$$' ./... && \
	$(GO) run ./cmd/benchgate -tol $(BENCH_GATE_TOL) \
		$(BENCH_BASELINE_DIR)/BENCH_expansion.json BENCH_expansion.json \
		$(BENCH_BASELINE_DIR)/BENCH_radio.json BENCH_radio.json \
		$(BENCH_BASELINE_DIR)/BENCH_service.json BENCH_service.json \
		$(BENCH_BASELINE_DIR)/BENCH_ingest.json BENCH_ingest.json

# Refresh the committed perf baselines with steady-state timings (the
# regime bench-gate measures in; `make bench`'s single iteration is too
# noisy to serve as a baseline). Commit the rewritten BENCH_*.json.
bench-baseline:
	$(GO) test -bench=. -benchtime=$(BENCH_BASELINE_TIME) -run='^$$' ./...

# Refresh BENCH_load.json: a single wexpd plus a 3-backend routed fleet
# (every process pinned to GOMAXPROCS=1 so the per-node capacity is
# comparable across machines), measured with cmd/wexpload on the cached
# and mixed profiles. Commit the rewritten BENCH_load.json.
bench-load:
	@mkdir -p artifacts/bench-load
	$(GO) build -o artifacts/bench-load/wexpd ./cmd/wexpd
	$(GO) build -o artifacts/bench-load/wexprouter ./cmd/wexprouter
	$(GO) build -o artifacts/bench-load/wexpload ./cmd/wexpload
	@set -e; trap 'kill 0 2>/dev/null || true' EXIT INT TERM; \
	GOMAXPROCS=1 artifacts/bench-load/wexpd -addr 127.0.0.1:18081 & \
	GOMAXPROCS=1 artifacts/bench-load/wexpd -addr 127.0.0.1:18082 & \
	GOMAXPROCS=1 artifacts/bench-load/wexpd -addr 127.0.0.1:18083 & \
	GOMAXPROCS=1 artifacts/bench-load/wexpd -addr 127.0.0.1:18084 & \
	GOMAXPROCS=1 artifacts/bench-load/wexprouter -addr 127.0.0.1:18080 \
		-backends http://127.0.0.1:18082,http://127.0.0.1:18083,http://127.0.0.1:18084 \
		-edge-cache-mb 64 & \
	sleep 1; \
	artifacts/bench-load/wexpload -target http://127.0.0.1:18081 -label single   -profile cached -count 50000 -out BENCH_load.json; \
	artifacts/bench-load/wexpload -target http://127.0.0.1:18080 -label routed-3 -profile cached -count 50000 -out BENCH_load.json -append; \
	artifacts/bench-load/wexpload -target http://127.0.0.1:18081 -label single   -profile mixed  -count 30000 -out BENCH_load.json -append; \
	artifacts/bench-load/wexpload -target http://127.0.0.1:18080 -label routed-3 -profile mixed  -count 30000 -out BENCH_load.json -append; \
	artifacts/bench-load/wexpload -target http://127.0.0.1:18081 -label single   -profile cached -rate 20000 -count 30000 -depth 64 -out BENCH_load.json -append

# Full E1–E14 reproduction run through the sharded engine: JSON artifacts,
# shard checkpoints and MANIFEST.json land in artifacts/experiments. A
# killed run resumes with:
#   go run ./cmd/experiments -resume artifacts/experiments
experiments:
	$(GO) run ./cmd/experiments -out artifacts/experiments

# Capture CPU + heap profiles of an expansion-heavy wexp run (hypercube
# n = 16 with the full exact sweep), so perf PRs start from a measured
# profile instead of a guess. Inspect with:
#   go tool pprof artifacts/wexp-cpu.pprof
#   go tool pprof artifacts/wexp-mem.pprof
profile:
	@mkdir -p artifacts
	$(GO) run ./cmd/wexp -family hypercube -size 4 -alpha 0.5 -workers 1 \
		-cpuprofile artifacts/wexp-cpu.pprof -memprofile artifacts/wexp-mem.pprof >/dev/null
	@echo "profiles written to artifacts/wexp-{cpu,mem}.pprof"

# The wexpd graph-analysis service on :8080 (see internal/service/README.md
# for the API and the caching/determinism contract).
serve:
	$(GO) run ./cmd/wexpd -addr :8080

clean:
	$(GO) clean ./...
	rm -rf artifacts
