package wexp

import (
	"context"

	"wexp/internal/expansion"
	"wexp/internal/experiments"
	"wexp/internal/radio"
	"wexp/internal/runopts"
)

// This file is the context-first facade: every function takes a
// context.Context as its first parameter and threads it into the engine it
// drives, superseding any Ctx field carried inside the options value. The
// pre-context entry points remain available as thin deprecated wrappers
// (see api.go and api_extra.go) so existing callers keep compiling; new
// code should use the *With forms or the unified Expansion dispatcher.

// RunOpts bundles the run-control knobs shared by every engine in the
// module — expansion.Options, radio.Options, and experiments.Options all
// embed it, so the worker-pool width, work budget, and seed are spelled
// identically everywhere. Each engine documents which of the three knobs
// it consumes; results are bit-identical at every Workers value by
// construction throughout.
type RunOpts = runopts.RunOpts

// Objective selects which expansion quantity the exact engine computes.
type Objective = expansion.Objective

// The expansion objectives of the paper (plus the classical edge variant):
// β (ordinary vertex expansion), βw (wireless), βu (unique-neighbor), and
// the Cheeger edge expansion h.
const (
	ObjOrdinary = expansion.ObjOrdinary
	ObjWireless = expansion.ObjWireless
	ObjUnique   = expansion.ObjUnique
	ObjEdge     = expansion.ObjEdge
)

// BipartiteExpansionResult reports an exact bipartite (or edge) expansion
// value with its witness subset and the search-effort counters of the
// branch-and-bound engine.
type BipartiteExpansionResult = expansion.BipartiteResult

// Certificate states what an expansion Result's value is worth: an exact
// proof, a randomized certificate with an explicit failure probability, or
// an uncertified estimate. It marshals into response bodies verbatim.
type Certificate = expansion.Certificate

// CertKind enumerates the certificate kinds.
type CertKind = expansion.CertKind

// The three certificate kinds, from strongest to weakest.
const (
	CertExact     = expansion.CertExact
	CertCertified = expansion.CertCertified
	CertEstimate  = expansion.CertEstimate
)

// RandomizedOptions parameterizes the randomized certified solver: the
// shared run knobs plus the target failure probability and the per-stratum
// sampling/search effort. The zero value selects sound defaults
// (failure ≤ 1e-9).
type RandomizedOptions = expansion.RandOptions

// ErrBudget is the sentinel wrapped by every budget-exceeded error from
// the exact engines; test with errors.Is to distinguish "raise the budget
// or shrink the instance" from hard input errors.
var ErrBudget = expansion.ErrBudget

// Expansion is the unified exact solver: it computes the objective obj on
// g under opt, honouring ctx for cancellation (ctx supersedes opt.Ctx).
// The default path is the deterministic branch-and-bound search —
// bit-identical results, witnesses, and search counters at every
// opt.Workers — while opt.NoPrune and opt.Recompute select the flat
// enumeration kernels that serve as its oracles.
func Expansion(ctx context.Context, g *Graph, obj Objective, opt ExpansionOptions) (ExpansionResult, error) {
	opt.Ctx = ctx
	return expansion.Exact(g, obj, opt)
}

// OrdinaryExpansionWith computes β(G) exactly under opt, honouring ctx.
func OrdinaryExpansionWith(ctx context.Context, g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return Expansion(ctx, g, ObjOrdinary, opt)
}

// UniqueExpansionWith computes βu(G) exactly under opt, honouring ctx.
func UniqueExpansionWith(ctx context.Context, g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return Expansion(ctx, g, ObjUnique, opt)
}

// WirelessExpansionWith computes βw(G) exactly under opt, honouring ctx.
func WirelessExpansionWith(ctx context.Context, g *Graph, opt ExpansionOptions) (ExpansionResult, error) {
	return Expansion(ctx, g, ObjWireless, opt)
}

// RandomizedExpansionWith runs the PPSZ-style randomized certified solver
// on obj under opt, honouring ctx (which supersedes opt.Ctx). The returned
// value is always a witnessed upper bound; the certificate brackets it from
// below with an explicit failure probability (or proves it exact when every
// cardinality stratum fits the exhaustive cutoff). Results, certificates,
// and trial counts are bit-identical at every opt.Workers.
func RandomizedExpansionWith(ctx context.Context, g *Graph, obj Objective, opt RandomizedOptions) (ExpansionResult, error) {
	opt.Ctx = ctx
	return expansion.Randomized(g, obj, opt)
}

// EdgeExpansionWith computes the Cheeger constant h(G) exactly under opt,
// honouring ctx, and returns the full witness record (EdgeExpansion keeps
// the plain-value convenience form).
func EdgeExpansionWith(ctx context.Context, g *Graph, opt ExpansionOptions) (BipartiteExpansionResult, error) {
	opt.Ctx = ctx
	return expansion.EdgeExpansionOpts(g, opt)
}

// MinBipartiteExpansionWith computes the exact bipartite vertex expansion
// min over nonempty S' ⊆ S of |Γ(S')|/|S'| under opt, honouring ctx, and
// returns the full witness record. opt.MaxK caps the subset size, which
// makes large S sides affordable through the branch-and-bound search.
func MinBipartiteExpansionWith(ctx context.Context, b *Bipartite, opt ExpansionOptions) (BipartiteExpansionResult, error) {
	opt.Ctx = ctx
	return expansion.MinBipartiteExpansionOpts(b, opt)
}

// ProfilesWith computes the per-size minima of β, βw, βu for every set
// size 1..maxK under opt, honouring ctx.
func ProfilesWith(ctx context.Context, g *Graph, maxK int, opt ExpansionOptions) (*TripleProfile, error) {
	opt.Ctx = ctx
	return expansion.ProfilesOpts(g, maxK, opt)
}

// AlphaSweepWith evaluates β, βw, βu exactly at a grid of α values under
// opt, honouring ctx.
func AlphaSweepWith(ctx context.Context, g *Graph, alphas []float64, opt ExpansionOptions) ([]AlphaPoint, error) {
	opt.Ctx = ctx
	return expansion.AlphaSweepOpts(g, alphas, opt)
}

// BroadcastMonteCarloWith fans independent seeded broadcast trials of the
// protocol over a deterministic worker pool and aggregates per-round and
// per-trial statistics, honouring ctx (which supersedes opt.Ctx). The
// adjacency bitset rows are built once and shared by all trials; results
// are bit-identical at every opt.Workers.
func BroadcastMonteCarloWith(ctx context.Context, g *Graph, source int, factory ProtocolFactory, trials int, opt MonteCarloOptions) (*MonteCarloResult, error) {
	opt.Ctx = ctx
	return radio.MonteCarlo(g, source, factory, trials, opt)
}

// RunExperimentsWith executes the selected experiments (all of them when
// ids is empty) through the sharded job engine, honouring ctx (which
// supersedes opt.Ctx). See RunExperiments for the artifact and
// checkpoint/resume contract; the report is bit-identical at every
// opt.Workers.
func RunExperimentsWith(ctx context.Context, ids []string, cfg ExperimentConfig, opt ExperimentOptions) (*ExperimentRunReport, error) {
	opt.Ctx = ctx
	return runExperiments(ids, cfg, opt)
}

func runExperiments(ids []string, cfg ExperimentConfig, opt ExperimentOptions) (*ExperimentRunReport, error) {
	specs := experiments.All
	if len(ids) > 0 {
		var err error
		specs, err = experiments.Select(ids)
		if err != nil {
			return nil, err
		}
	}
	return experiments.Run(specs, cfg, opt)
}
