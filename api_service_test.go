package wexp

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get2 performs a GET and returns (status, body, X-Cache header).
func get2(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Cache")
}

// TestEdgeListRoundTripAndDigest is the facade-level serialization
// contract: WriteEdgeList → ReadEdgeList reproduces the graph, and
// GraphDigest is stable across the round trip.
func TestEdgeListRoundTripAndDigest(t *testing.T) {
	r := NewRNG(11)
	graphs := map[string]*Graph{
		"hypercube4": Hypercube(4),
		"torus5":     Torus(5, 5),
		"er":         ErdosRenyi(40, 0.15, r),
		"single":     Path(1),
	}
	for name, g := range graphs {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("%s: round trip changed shape: %v vs %v", name, g2, g)
		}
		if GraphDigest(g) != GraphDigest(g2) {
			t.Fatalf("%s: digest changed across round trip", name)
		}
	}
}

// TestGraphDigestStability pins digest semantics at the facade: identical
// structure ⇒ identical digest, regardless of how the graph was built.
func TestGraphDigestStability(t *testing.T) {
	b1 := NewGraphBuilder(5)
	b2 := NewGraphBuilder(5)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for _, e := range edges {
		b1.MustAddEdge(e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		b2.MustAddEdge(edges[i][1], edges[i][0])
	}
	if GraphDigest(b1.Build()) != GraphDigest(b2.Build()) {
		t.Fatal("same graph, different digests")
	}
	if GraphDigest(Cycle(5)) == GraphDigest(Path(5)) {
		t.Fatal("different graphs collided")
	}
}

// TestNewServiceSmoke drives the facade-constructed handler end to end:
// family registration, a computed request, and the memoized repeat.
func TestNewServiceSmoke(t *testing.T) {
	ts := httptest.NewServer(NewService(ServiceConfig{Workers: 2}))
	defer ts.Close()

	_, body1, cache1 := get2(t, ts.URL+"/v1/expansion?family=hypercube&size=3&alpha=0.5")
	_, body2, cache2 := get2(t, ts.URL+"/v1/expansion?family=hypercube&size=3&alpha=0.5")
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("X-Cache sequence = %q, %q; want miss, hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("identical requests returned different bodies")
	}
	_, metrics, _ := get2(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "wexpd_cache_hits 1") {
		t.Fatalf("metrics missing the cache hit:\n%s", metrics)
	}
}
