// The Section 5 broadcast lower bound, measured: on chains of core graphs,
// broadcast time grows as Ω(D·log(n/D)). This example sweeps the chain
// length, runs the Decay protocol, and prints measured rounds next to the
// paper's scale.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"wexp"
)

func main() {
	const s = 32 // core parameter per hop
	r := wexp.NewRNG(5)
	fmt.Println("hops |     n | D·log2(n/D) | decay rounds | rounds/scale")
	fmt.Println("-----+-------+-------------+--------------+-------------")
	for _, hops := range []int{2, 4, 8, 16} {
		g, root, err := wexp.BroadcastChain(hops, s, r)
		if err != nil {
			log.Fatal(err)
		}
		diam := 2 * hops // the paper's D (up to the +2 of root attachment)
		scale := wexp.BroadcastLowerBound(diam, g.N())
		res, err := wexp.Broadcast(g, root, wexp.DecayProtocol(r), 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("hops=%d: broadcast incomplete", hops)
		}
		fmt.Printf("%4d | %5d | %11.1f | %12d | %12.2f\n",
			hops, g.N(), scale, res.Rounds, float64(res.Rounds)/scale)
	}
	fmt.Println("\nThe rounds/scale column stays bounded below by a constant as the chain")
	fmt.Println("grows — the finite-size signature of the Ω(D·log(n/D)) lower bound, which")
	fmt.Println("the paper proves self-containedly from the core graph's wireless ceiling.")
}
