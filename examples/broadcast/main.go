// Broadcast on C⁺ under the radio collision model: naive flooding deadlocks
// forever while the spokesman schedule — wireless expansion made
// operational — completes immediately (the Introduction's motivation).
//
// Run with: go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"wexp"
)

func main() {
	const clique = 32
	g := wexp.CPlus(clique)
	fmt.Printf("C⁺ with clique size %d (n=%d): source s0 is attached to x and y only.\n\n",
		clique, g.N())

	r := wexp.NewRNG(2018)
	run := func(name string, p wexp.Protocol, budget int) {
		res, err := wexp.Broadcast(g, 0, p, budget)
		if err != nil {
			log.Fatal(err)
		}
		status := "completed"
		if !res.Completed {
			status = fmt.Sprintf("DEADLOCKED with %d/%d informed", res.InformedCount, g.N())
		}
		fmt.Printf("%-12s %6d rounds, %s, %d collisions\n", name, res.Rounds, status, res.Collisions)
	}

	run("flood", wexp.FloodProtocol(), 1000)
	run("decay", wexp.DecayProtocol(r), 100000)
	run("round-robin", wexp.RoundRobinProtocol(), 100000)
	run("spokesman", wexp.SpokesmanProtocol(r, 4), 1000)

	fmt.Println("\nAfter round one, {s0, x, y} all hold the message; under flooding every")
	fmt.Println("clique vertex hears x and y simultaneously — a collision, indistinguishable")
	fmt.Println("from silence — forever. The spokesman schedule transmits a strict subset")
	fmt.Println("(one of x, y) and finishes the broadcast in the next round.")
}
