// Spokesman election (Section 4.2.1): compare the paper's algorithms on a
// hard instance — the binary-tree core graph of Lemma 4.4, whose optimum is
// provably at most 2s out of |N| = s·log 2s.
//
// Run with: go run ./examples/spokesman
package main

import (
	"fmt"
	"log"

	"wexp"
)

func main() {
	const s = 32
	b, err := wexp.CoreGraph(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Core graph (Lemma 4.4), s=%d: |S|=%d, |N|=%d, every S' ⊆ S has |Γ¹_S(S')| ≤ %d\n\n",
		s, b.NS(), b.NN(), 2*s)

	r := wexp.NewRNG(7)
	type row struct {
		name string
		sel  wexp.Selection
	}
	rows := []row{
		{"decay sampler (Lemma 4.2)", wexp.SpokesmanDecay(b, 32, r)},
		{"greedy (Lemma A.1)", wexp.SpokesmanGreedy(b)},
		{"Procedure Partition (Lemma A.3)", wexp.SpokesmanPartition(b)},
		{"recursive partition (Lemma A.13)", wexp.SpokesmanRecursive(b)},
		{"portfolio best", wexp.SpokesmanBest(b, 32, r)},
	}
	fmt.Printf("%-35s %8s %10s %10s\n", "algorithm", "|Γ¹|", "of ceiling", "|S'|")
	for _, rw := range rows {
		fmt.Printf("%-35s %8d %9.0f%% %10d\n",
			rw.name, rw.sel.Unique, 100*float64(rw.sel.Unique)/float64(2*s), len(rw.sel.Subset))
	}

	fmt.Println("\nEvery value respects the ceiling 2s — the Lemma 4.4(5) negative bound —")
	fmt.Printf("while the ordinary neighborhood of S has %d vertices: wireless expansion is\n", b.NN())
	fmt.Printf("a Θ(log s) factor below ordinary expansion on this graph, by design.\n")
}
