// The negative result (Theorem 1.2), demonstrated: plug a generalized core
// graph onto a good expander and watch the witness set S* keep its ordinary
// expansion while its wireless expansion collapses by the log factor.
//
// Run with: go run ./examples/worstcase
package main

import (
	"fmt"
	"log"

	"wexp"
)

func main() {
	r := wexp.NewRNG(1802) // arXiv number of the paper, why not
	fmt.Println("base     | ε    |   ñ  |  |S*| | ord(S*) | wireless(S*) ≤ | separation")
	fmt.Println("---------+------+------+-------+---------+----------------+-----------")
	for _, n := range []int{128, 256, 512, 1024} {
		base := wexp.Complete(n) // a (1/2, 1)-expander with ∆ = n−1
		const eps = 0.4
		g, witness, err := wexp.WorstCaseExpander(base, 1.0, eps, r)
		if err != nil {
			log.Fatal(err)
		}
		// Ordinary expansion of the witness: measure directly.
		b, _ := wexp.InducedBipartite(g, witness)
		ord := float64(b.NN()) / float64(len(witness))
		// Wireless: the best certificate our portfolio can produce — by
		// Lemma 4.6(3) no subset can beat (4/log min{∆*/β*, ∆*β*})·|N*|.
		sel := wexp.SpokesmanBestImproved(b, 16, r)
		wUpper := float64(sel.Unique) / float64(len(witness))
		fmt.Printf("K_%-6d | %.2f | %4d | %5d | %7.1f | %14.1f | %9.1fx\n",
			n, eps, g.N(), len(witness), ord, wUpper, ord/wUpper)
	}
	fmt.Println("\nThe separation factor grows with the instance — the log(min{∆/β, ∆β})")
	fmt.Println("gap of Theorem 1.2. No algorithm can close it: the ceiling is structural")
	fmt.Println("(every subset of the core's S side collides on all but O(s/log s) of N).")
}
