// Low-arboricity graphs (the corollary to Theorem 1.1): on planar grids,
// tori, and trees, wireless expansion matches ordinary expansion up to a
// constant — radio broadcast on such topologies is nearly as effective as
// wired flooding.
//
// Run with: go run ./examples/planar
package main

import (
	"fmt"
	"math"

	"wexp"
)

func main() {
	r := wexp.NewRNG(11)
	families := []struct {
		name string
		g    *wexp.Graph
	}{
		{"grid 16x16", wexp.Grid(16, 16)},
		{"torus 16x16", wexp.Torus(16, 16)},
		{"binary tree (8 levels)", wexp.CompleteBinaryTree(8)},
	}
	fmt.Println("family                  |   n  | sets | min Γ¹-cover / |Γ⁻(S)|")
	fmt.Println("------------------------+------+------+------------------------")
	for _, f := range families {
		minRatio := math.Inf(1)
		sets := sampleSets(f.g, r)
		for _, S := range sets {
			sel, _ := wexp.WirelessCertificate(f.g, S, 8, r)
			b, _ := wexp.InducedBipartite(f.g, S)
			if b.NN() == 0 {
				continue
			}
			if ratio := float64(sel.Unique) / float64(b.NN()); ratio < minRatio {
				minRatio = ratio
			}
		}
		fmt.Printf("%-23s | %4d | %4d | %22.2f\n", f.name, f.g.N(), len(sets), minRatio)
	}
	fmt.Println("\nEvery sampled set keeps a constant fraction of its neighborhood uniquely")
	fmt.Println("coverable: on low-arboricity graphs min{∆/β, ∆β} is O(1), so Theorem 1.1's")
	fmt.Println("log factor collapses to a constant.")
}

// sampleSets draws a few BFS balls and random sets of varying size.
func sampleSets(g *wexp.Graph, r *wexp.RNG) [][]int {
	var out [][]int
	n := g.N()
	for k := 2; k <= n/4; k *= 2 {
		var S []int
		seen := map[int]bool{}
		for len(S) < k {
			v := r.Intn(n)
			if !seen[v] {
				seen[v] = true
				S = append(S, v)
			}
		}
		out = append(out, S)
		// A contiguous BFS ball of the same size.
		ball := bfsBall(g, r.Intn(n), k)
		out = append(out, ball)
	}
	return out
}

func bfsBall(g *wexp.Graph, src, k int) []int {
	dist := g.BFS(src)
	var ball []int
	for d := 0; len(ball) < k; d++ {
		added := false
		for v, dv := range dist {
			if dv == d && len(ball) < k {
				ball = append(ball, v)
				added = true
			}
		}
		if !added {
			break
		}
	}
	return ball
}
