// Quickstart: build a graph, measure its three expansion parameters, and
// extract a wireless-expansion certificate for a concrete set.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wexp"
)

func main() {
	// The paper's motivating example C⁺: a clique with a weakly attached
	// source. A good ordinary expander whose unique-neighbor expansion is
	// zero — but whose *wireless* expansion is as large as its ordinary
	// expansion.
	g := wexp.CPlus(8)
	fmt.Printf("C+ (clique 8 + source): n=%d, m=%d, ∆=%d\n", g.N(), g.M(), g.MaxDegree())

	beta, betaW, betaU, err := wexp.ExpansionOrdering(g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("β  (ordinary expansion) = %.3f\n", beta)
	fmt.Printf("βw (wireless expansion) = %.3f\n", betaW)
	fmt.Printf("βu (unique expansion)   = %.3f\n", betaU)
	fmt.Println("Observation 2.1 in action: β ≥ βw ≥ βu, with βu = 0 but βw large.")

	// A certificate for the problematic set S = {s0, x, y}: which subset
	// should transmit so that a maximum number of outsiders hear exactly
	// one transmitter?
	r := wexp.NewRNG(42)
	S := []int{0, 1, 2}
	sel, verts := wexp.WirelessCertificate(g, S, 16, r)
	fmt.Printf("\nFor S = {s0, x, y}: transmit %v (algorithm %q)\n", verts, sel.Method)
	fmt.Printf("→ %d vertices outside S receive the message collision-free.\n", sel.Unique)
}
